#include "src/congest/network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>
#include <utility>

#include "src/congest/metrics.h"
#include "src/congest/profiler.h"
#include "src/congest/trace.h"

// Force-inline hint for the per-port metrics accounting (hot even at modest
// n; both call sites are in this TU). Plain `inline` is not enough: GCC
// leaves the function out of line at -O2/-O3 and the call shows up in dense
// benchmarks.
#if defined(__GNUC__) || defined(__clang__)
#define ECD_METRICS_HOT __attribute__((always_inline)) inline
#else
#define ECD_METRICS_HOT inline
#endif

namespace ecd::congest {

using graph::Graph;
using graph::VertexId;

namespace {

// Ceiling on each preallocated arena buffer, in bytes. An enforced network
// whose 2m * bandwidth_tokens * sizeof(Message) footprint exceeds this
// falls back to per-port vectors rather than committing to an unreasonable
// slab. 2 GiB per buffer admits the n=5M bench axis (20M directed ports at
// ~72 bytes/slot ≈ 1.4 GiB) while keeping a double-buffered Network within
// the memory of a stock CI runner.
constexpr std::int64_t kMaxArenaBytes = std::int64_t{2} << 30;
const std::int64_t kMaxArenaSlots =
    kMaxArenaBytes / static_cast<std::int64_t>(sizeof(Message));

// Minimum per-round work weight (directed ports + vertices) that justifies
// one extra shard when num_threads resolves automatically (0 = hardware
// concurrency). A worker whose shard is lighter than this spends more time
// at the round barriers than inside them.
constexpr std::int64_t kAutoShardMinWeight = 16384;

std::string describe_violation(CongestionError::Kind kind, std::int64_t round,
                               VertexId from, VertexId to, int used,
                               int budget) {
  std::ostringstream os;
  if (kind == CongestionError::Kind::kMessageSize) {
    os << "message exceeds O(log n) bits: " << used << " words (budget "
       << budget << ") on edge " << from << "->" << to << " at round "
       << round;
  } else {
    os << "per-edge per-round bandwidth exceeded: " << used
       << " tokens (budget " << budget << ") on edge " << from << "->" << to
       << " at round " << round;
  }
  return os.str();
}

}  // namespace

CongestionError::CongestionError(Kind kind, std::int64_t round,
                                 graph::VertexId from, graph::VertexId to,
                                 int used, int budget)
    : std::runtime_error(
          describe_violation(kind, round, from, to, used, budget)),
      kind_(kind),
      round_(round),
      from_(from),
      to_(to),
      used_(used),
      budget_(budget) {}

Network::Network(const Graph& g, NetworkOptions options)
    : g_(g), options_(std::move(options)), n_(g.num_vertices()) {
  // Validate even when no fault fires: a malformed plan (negative
  // probability, bad crash vertex) should fail loudly, not read as "off".
  options_.faults.validate(n_);
  faults_active_ = options_.faults.enabled();
  if (faults_active_) {
    crash_round_.assign(n_, std::numeric_limits<std::int64_t>::max());
    for (const CrashEvent& c : options_.faults.crashes) {
      crash_round_[c.vertex] = std::min(crash_round_[c.vertex], c.round);
    }
  }
  // Topology churn (DESIGN.md §17): the port CSR is built over the *union*
  // graph — every initial edge plus every edge a kEdgeInsert event can make
  // live — so inserts never reallocate anything mid-run. Extras are
  // deduplicated in first-appearance order; extra edge j gets union edge id
  // g.num_edges() + j.
  churn_active_ = options_.faults.has_churn();
  std::vector<std::pair<VertexId, VertexId>> extras;
  std::vector<int> extra_deg;
  if (churn_active_) {
    extra_deg.assign(n_, 0);
    for (const ChurnEvent& e : options_.faults.churn) {
      if (e.kind != ChurnKind::kEdgeInsert) continue;
      const VertexId a = std::min(e.u, e.v);
      const VertexId b = std::max(e.u, e.v);
      if (g.has_edge(a, b)) continue;
      bool seen = false;
      for (const auto& x : extras) {
        if (x.first == a && x.second == b) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      extras.emplace_back(a, b);
      ++extra_deg[a];
      ++extra_deg[b];
    }
  }
  // Directed-port CSR: port p of vertex v is global port port_base_[v] + p,
  // aligned with Graph::neighbors(v). A churn plan's insert-only edges take
  // the ports *after* a vertex's initial ones, so initial edges keep their
  // local port numbers — the port-stability rule surviving edges rely on.
  port_base_.resize(n_ + 1);
  port_base_[0] = 0;
  for (VertexId v = 0; v < n_; ++v) {
    port_base_[v + 1] =
        port_base_[v] + g.degree(v) + (churn_active_ ? extra_deg[v] : 0);
  }
  num_dir_ports_ = port_base_[n_];

  // Union adjacency and union incident edge ids (churn only): initial
  // neighbors first, then the insert-only extras via a per-vertex cursor.
  std::vector<graph::EdgeId> uinc;
  if (churn_active_) {
    churn_adj_.resize(num_dir_ports_);
    uinc.resize(num_dir_ports_);
    std::vector<int> cursor(n_, 0);
    for (VertexId v = 0; v < n_; ++v) {
      const auto nbrs = g.neighbors(v);
      const auto eids = g.incident_edges(v);
      std::copy(nbrs.begin(), nbrs.end(), churn_adj_.begin() + port_base_[v]);
      std::copy(eids.begin(), eids.end(), uinc.begin() + port_base_[v]);
      cursor[v] = static_cast<int>(nbrs.size());
    }
    for (std::size_t j = 0; j < extras.size(); ++j) {
      const auto [a, b] = extras[j];
      const graph::EdgeId ue =
          static_cast<graph::EdgeId>(g.num_edges() + static_cast<int>(j));
      churn_adj_[port_base_[a] + cursor[a]] = b;
      uinc[port_base_[a] + cursor[a]] = ue;
      ++cursor[a];
      churn_adj_[port_base_[b] + cursor[b]] = a;
      uinc[port_base_[b] + cursor[b]] = ue;
      ++cursor[b];
    }
  }

  // Pair up the two directed ports of every edge: messages sent on gp are
  // delivered at reverse_slot_[gp]. Each edge is visited exactly twice in
  // the vertex sweep, so one int of scratch per edge (the first visit's
  // port) pairs them — half the temporary footprint of the old
  // pair-per-edge table, which mattered once n reached the millions.
  reverse_slot_.assign(num_dir_ports_, -1);
  port_owner_.resize(num_dir_ports_);
  {
    const int m_union = g.num_edges() + static_cast<int>(extras.size());
    std::vector<int> first_port(m_union, -1);
    for (VertexId v = 0; v < n_; ++v) {
      const graph::EdgeId* const eids = churn_active_
                                            ? uinc.data() + port_base_[v]
                                            : g.incident_edges(v).data();
      const int deg = port_base_[v + 1] - port_base_[v];
      for (int i = 0; i < deg; ++i) {
        const int gp = port_base_[v] + i;
        port_owner_[gp] = v;
        int& fp = first_port[eids[i]];
        if (fp < 0) {
          fp = gp;
        } else {
          reverse_slot_[fp] = gp;
          reverse_slot_[gp] = fp;
        }
      }
    }
  }
  port_peer_.resize(num_dir_ports_);
  for (int gp = 0; gp < num_dir_ports_; ++gp) {
    port_peer_[gp] = port_owner_[reverse_slot_[gp]];
  }
  if (churn_active_) {
    // Pre-run liveness: initial edges carry traffic, insert-only edges are
    // dead until their event fires. Every vertex starts present.
    port_on_init_.resize(num_dir_ports_);
    for (int gp = 0; gp < num_dir_ports_; ++gp) {
      port_on_init_[gp] = uinc[gp] < g.num_edges() ? 1 : 0;
    }
    port_on_ = port_on_init_;
    present_.assign(n_, 1);
  }

  contexts_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) {
    Context& ctx = contexts_[v];
    ctx.id_ = v;
    ctx.n_ = n_;
    ctx.net_ = this;
    ctx.base_ = port_base_[v];
    ctx.neighbors_ =
        churn_active_
            ? std::span<const VertexId>(churn_adj_.data() + port_base_[v],
                                        port_base_[v + 1] - port_base_[v])
            : g.neighbors(v);
  }

  // Static vertex sharding (DESIGN.md §11).
  num_shards_ = ThreadPool::resolve(options_.num_threads);
  if (options_.num_threads < 1) {
    // Automatic resolution clamps to what the graph can feed: a shard
    // below kAutoShardMinWeight of per-round work costs more in barrier
    // latency than it recovers in parallelism, so tiny graphs run with
    // fewer workers (often serially) even on wide machines.
    const std::int64_t weight = static_cast<std::int64_t>(num_dir_ports_) + n_;
    num_shards_ = static_cast<int>(std::min<std::int64_t>(
        num_shards_, std::max<std::int64_t>(1, weight / kAutoShardMinWeight)));
  }
  num_shards_ = std::min(num_shards_, std::max(1, n_));
  shard_begin_.assign(num_shards_ + 1, 0);
  {
    // Degree-weighted contiguous ranges: shard boundaries are placed on the
    // cumulative (degree + 1) prefix — ports dominate per-round work, the
    // +1 spreads low-degree vertices too.
    const std::int64_t total_weight = num_dir_ports_ + n_;
    VertexId v = 0;
    std::int64_t acc = 0;
    for (int s = 0; s < num_shards_; ++s) {
      shard_begin_[s] = v;
      const std::int64_t target = total_weight * (s + 1) / num_shards_;
      while (v < n_ && acc < target) {
        // Union degree, not g.degree(v): with a churn plan the two differ
        // and total_weight above is the union port count — mixing them
        // would skew the boundaries.
        acc += (port_base_[v + 1] - port_base_[v]) + 1;
        ++v;
      }
    }
    shard_begin_[num_shards_] = n_;
  }
  send_bucket_.resize(num_dir_ports_);
  {
    std::vector<std::int32_t> vertex_shard(n_);
    for (int s = 0; s < num_shards_; ++s) {
      for (VertexId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
        vertex_shard[v] = s;
      }
    }
    for (int gp = 0; gp < num_dir_ports_; ++gp) {
      send_bucket_[gp] = vertex_shard[port_owner_[gp]] * num_shards_ +
                         vertex_shard[port_owner_[reverse_slot_[gp]]];
    }
  }
  bool pool_fallback = false;
  if (num_shards_ > 1) {
    if (options_.shared_pool &&
        options_.shared_pool->num_threads() == num_shards_) {
      // Pool sharing (DESIGN.md §16): dispatch on the caller's pool instead
      // of spawning a private team. A size mismatch falls through to the
      // owned pool — the shard layout above is already fixed, and resizing
      // a shared pool under other Networks would invalidate theirs.
      pool_ptr_ = options_.shared_pool;
    } else {
      // Counted below once metrics_ is bound: a sweep whose shared pool
      // stopped matching its Networks degrades throughput invisibly
      // otherwise.
      pool_fallback = options_.shared_pool != nullptr;
      pool_ = std::make_unique<ThreadPool>(num_shards_);
      pool_ptr_ = pool_.get();
    }
  }
  shard_accum_.resize(num_shards_);

  slot_cap_ = std::max(1, options_.bandwidth_tokens);
  if (faults_active_ && options_.faults.has_message_faults()) {
    // Worst case per directed port with message faults on: B fresh sends,
    // up to B * max_delay_rounds delayed messages in transit ahead of them,
    // and up to B duplicate copies appended during the fault pass.
    const int delay_span = options_.faults.delay_probability > 0.0
                               ? options_.faults.max_delay_rounds
                               : 0;
    slot_cap_ = slot_cap_ * (delay_span + 2);
  }
  arena_mode_ =
      options_.enforce_bandwidth &&
      static_cast<std::int64_t>(num_dir_ports_) * slot_cap_ <= kMaxArenaSlots;
  for (int b = 0; b < 2; ++b) {
    if (arena_mode_) {
      slab_[b].resize(static_cast<std::size_t>(num_dir_ports_) * slot_cap_);
      counts_[b].assign(num_dir_ports_, 0);
    } else {
      boxes_[b].resize(num_dir_ports_);
    }
    mail_[b].assign(n_, 0);
    if (faults_active_) {
      injected_[b].assign(num_dir_ports_, 0);
      if (arena_mode_) {
        stage_slab_[b].assign(
            static_cast<std::size_t>(num_dir_ports_) * slot_cap_, 0);
      } else {
        stage_boxes_[b].resize(num_dir_ports_);
      }
    }
  }
  // A bucket gains at most one entry per receiver port it can be chosen
  // for, so reserving the exact port count per bucket makes steady-state
  // appends allocation-free.
  {
    std::vector<int> bucket_cap(
        static_cast<std::size_t>(num_shards_) * num_shards_, 0);
    for (int gp = 0; gp < num_dir_ports_; ++gp) ++bucket_cap[send_bucket_[gp]];
    for (int b = 0; b < 2; ++b) {
      active_[b].resize(bucket_cap.size());
      for (std::size_t i = 0; i < bucket_cap.size(); ++i) {
        active_[b][i].reserve(bucket_cap[i]);
      }
    }
  }
  if (options_.trace) {
    trace_order_.reserve(num_dir_ports_);
    // Sharded trace lanes (DESIGN.md §18): lane t holds shard t's delivered
    // ports, so its receiver-port count bounds the lane. Reserved here,
    // appends never allocate — the trace path keeps the zero-alloc round
    // contract at every thread count.
    trace_lane_.resize(num_shards_);
    for (int t = 0; t < num_shards_; ++t) {
      int ports = 0;
      for (int s = 0; s < num_shards_; ++s) {
        ports += static_cast<int>(active_[0][s * num_shards_ + t].capacity());
      }
      trace_lane_[t].reserve(ports);
    }
    if (churn_active_) trace_purged_.assign(num_dir_ports_, 0);
  }
  profiler_ = options_.profiler;
  // Lane allocation happens here, once per Network — the profiler's round
  // hooks never allocate (DESIGN.md §10 holds with profiling on).
  if (profiler_) profiler_->bind(num_shards_);
  metrics_ = options_.metrics;
  if (pool_fallback && metrics_) {
    metrics_->counter("pool_fallbacks")->increment();
  }
  if (metrics_) {
    edge_accum_.assign(num_dir_ports_, EdgeAccum{});
    const std::size_t tag_rows =
        static_cast<std::size_t>(num_shards_) * kMetricsTagSlots;
    tag_msgs_.assign(tag_rows, 0);
    tag_words_.assign(tag_rows, 0);
    cp_depth_.assign(n_, 0);
    cp_stage_.assign(n_, CpStage{});
    cp_touched_.resize(num_shards_);
    for (int s = 0; s < num_shards_; ++s) {
      // A vertex is staged at most once per round, so the shard's vertex
      // count bounds the list — reserved here, appends never allocate.
      cp_touched_[s].reserve(shard_begin_[s + 1] - shard_begin_[s]);
    }
  }
  finished_.assign(n_, 0);

  // Sparse fast path state (DESIGN.md §15): per-parity, per-shard active
  // worklists reserved to the shard's vertex count (appends never
  // allocate), the per-vertex queued flags that dedup them, and the
  // per-round membership scratch.
  for (int b = 0; b < 2; ++b) {
    worklist_[b].resize(num_shards_);
    for (int s = 0; s < num_shards_; ++s) {
      worklist_[b][s].reserve(shard_begin_[s + 1] - shard_begin_[s]);
    }
    queued_[b].assign(n_, 0);
  }
  member_.assign(num_shards_, 0);
  member_rank_.assign(num_shards_, -1);
  orphans_.reserve(num_shards_);
  // Crash events bucketed by owning shard, sorted by round: one event per
  // crashed vertex (crash_round_ already keeps the earliest plan entry),
  // ties in vertex order like the old full-sweep accounting.
  crash_sched_.resize(num_shards_);
  crash_cursor_.assign(num_shards_, 0);
  if (faults_active_) {
    for (int s = 0; s < num_shards_; ++s) {
      for (VertexId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
        if (crash_round_[v] != std::numeric_limits<std::int64_t>::max()) {
          crash_sched_[s].push_back({crash_round_[v], v});
        }
      }
      std::stable_sort(crash_sched_[s].begin(), crash_sched_[s].end(),
                       [](const CrashSched& a, const CrashSched& b) {
                         return a.round < b.round;
                       });
    }
  }
  if (churn_active_) {
    churn_sched_.reserve(options_.faults.churn.size());
    for (const ChurnEvent& e : options_.faults.churn) {
      ChurnSched s;
      s.round = e.round;
      s.kind = e.kind;
      s.u = e.u;
      if (e.kind == ChurnKind::kEdgeInsert ||
          e.kind == ChurnKind::kEdgeDelete) {
        // Resolve the endpoints to the edge's two directed ports up front.
        // Every insertable edge is in the union by construction, so only a
        // delete of an edge that neither the graph nor any insert event
        // carries can miss — a plan error; fail here, not mid-run.
        int gp = -1;
        for (int p = port_base_[e.u]; p < port_base_[e.u + 1]; ++p) {
          if (churn_adj_[p] == e.v) {
            gp = p;
            break;
          }
        }
        if (gp < 0) {
          std::ostringstream os;
          os << "FaultPlan: churn deletes edge {" << e.u << ", " << e.v
             << "} which is neither in the graph nor inserted by the plan";
          throw std::invalid_argument(os.str());
        }
        s.gp = gp;
        s.rs = reverse_slot_[gp];
      }
      churn_sched_.push_back(s);
    }
    // Stable by round: plan order breaks ties, as fault.h documents.
    std::stable_sort(churn_sched_.begin(), churn_sched_.end(),
                     [](const ChurnSched& a, const ChurnSched& b) {
                       return a.round < b.round;
                     });
  }
}

PortInbox Context::inbox(int port) const {
  assert(port >= 0 && port < num_ports());
  const Network& net = *net_;
  const int gp = base_ + port;
  if (net.arena_mode_) {
    return PortInbox(
        net.slab_[net.in_].data() +
            static_cast<std::size_t>(gp) * net.slot_cap_,
        net.counts_[net.in_][gp]);
  }
  const auto& box = net.boxes_[net.in_][gp];
  return PortInbox(box.data(), static_cast<int>(box.size()));
}

bool Context::port_live(int port) const {
  assert(port >= 0 && port < num_ports());
  const Network& net = *net_;
  return !net.churn_active_ || net.port_on_[base_ + port] != 0;
}

void Context::send(int port, Message message) {
  // Validate before touching any network state: a bad port must leave the
  // round's mailboxes exactly as they were.
  if (port < 0 || port >= num_ports()) {
    std::ostringstream os;
    os << "Context::send: port " << port << " out of range for vertex " << id_
       << " (" << num_ports() << " ports)";
    throw std::out_of_range(os.str());
  }
  Network& net = *net_;
  const int gp = base_ + port;
  if (net.churn_active_ && !net.port_on_[gp]) {
    // Dead edge (deleted or not yet inserted): the send is silently
    // discarded, like traffic on an unplugged link — no bandwidth or size
    // enforcement applies to it. Staged per *sender* shard (the shard
    // computing this vertex is the only writer) and folded into
    // RunStats::messages_purged at the barrier reduction.
    ++net.shard_accum_[net.send_bucket_[gp] / net.num_shards_]
          .churn_sends_dropped;
    return;
  }
  const int rs = net.reverse_slot_[gp];
  const int out = 1 - net.in_;
  const int queued = net.arena_mode_
                         ? net.counts_[out][rs]
                         : static_cast<int>(net.boxes_[out][rs].size());
  // Delayed messages injected by the fault hook occupy the port's slot
  // prefix; the sender's bandwidth budget applies to its fresh suffix only.
  const int fresh =
      net.faults_active_ ? queued - net.injected_[out][rs] : queued;
  if (net.options_.enforce_bandwidth) {
    if (message.size_words() > kMaxMessageWords) {
      CongestionError err(CongestionError::Kind::kMessageSize, round_, id_,
                          neighbors_[port], message.size_words(),
                          kMaxMessageWords);
      if (net.options_.trace) {
        net.trace_violation(err, net.send_bucket_[gp] / net.num_shards_);
      }
      throw err;
    }
    if (fresh >= net.options_.bandwidth_tokens) {
      CongestionError err(CongestionError::Kind::kBandwidth, round_, id_,
                          neighbors_[port], fresh + 1,
                          net.options_.bandwidth_tokens);
      if (net.options_.trace) {
        net.trace_violation(err, net.send_bucket_[gp] / net.num_shards_);
      }
      throw err;
    }
  }
  // Deposit directly into the receiver's slot for next round; delivery is
  // then just the buffer swap. The slot group rs and the active bucket are
  // both written by this vertex alone (one sender per edge direction, one
  // shard per sender), which is what makes the compute phase race-free.
  if (queued == 0) net.active_[out][net.send_bucket_[gp]].push_back(rs);
  if (net.arena_mode_) {
    net.slab_[out][static_cast<std::size_t>(rs) * net.slot_cap_ + queued] =
        std::move(message);
    net.counts_[out][rs] = queued + 1;
  } else {
    net.boxes_[out][rs].push_back(std::move(message));
  }
}

void Network::reset_mailboxes() {
  for (int b = 0; b < 2; ++b) {
    for (std::vector<int>& bucket : active_[b]) {
      for (const int gp : bucket) {
        if (arena_mode_) {
          counts_[b][gp] = 0;
        } else {
          boxes_[b][gp].clear();
        }
        if (faults_active_) {
          injected_[b][gp] = 0;
          if (!arena_mode_) stage_boxes_[b][gp].clear();
        }
        mail_[b][port_owner_[gp]] = 0;
      }
      bucket.clear();
    }
  }
  pending_injected_ = 0;
}

void Network::prime_worklists() {
  // Stale lists (an aborted run unwinds mid-round) are drained through
  // their own entries so the queued flags never need an O(n) sweep.
  for (int b = 0; b < 2; ++b) {
    for (int s = 0; s < num_shards_; ++s) {
      for (const VertexId v : worklist_[b][s]) queued_[b][v] = 0;
      worklist_[b][s].clear();
    }
  }
  // Round 0 precedes any message exchange: every vertex steps once, and
  // the round-0 compute re-queues exactly the vertices still in play.
  for (int s = 0; s < num_shards_; ++s) {
    std::vector<VertexId>& wl = worklist_[in_][s];
    for (VertexId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
      queued_[in_][v] = 1;
      wl.push_back(v);
    }
  }
  std::fill(crash_cursor_.begin(), crash_cursor_.end(), std::size_t{0});
}

void Network::retire_inbox_buffer() {
  for (std::vector<int>& bucket : active_[in_]) {
    for (const int gp : bucket) {
      if (arena_mode_) {
        counts_[in_][gp] = 0;
      } else {
        boxes_[in_][gp].clear();
      }
      if (faults_active_) {
        injected_[in_][gp] = 0;
        if (!arena_mode_) stage_boxes_[in_][gp].clear();
      }
      mail_[in_][port_owner_[gp]] = 0;
    }
    bucket.clear();
  }
}

void Network::reset_for_run() {
  reset_mailboxes();
  prime_worklists();
  // Rewind the churn schedule and restore construction-time topology:
  // initial edges live, insert-only edges dead, every vertex present.
  if (churn_active_) {
    std::copy(port_on_init_.begin(), port_on_init_.end(), port_on_.begin());
    std::fill(present_.begin(), present_.end(), char{1});
    churn_cursor_ = 0;
    round_churn_events_ = 0;
  }
  // Staged metrics scratch is cleared here rather than at run end: aborted
  // runs (CongestionError, max_rounds) unwind past metrics_end_run, and
  // this keeps their partial accumulators from leaking into the next run.
  // The registry itself is caller-owned and deliberately untouched — reuse
  // engines decide whether a run accumulates or starts a fresh report.
  if (metrics_) {
    edge_accum_.assign(edge_accum_.size(), EdgeAccum{});
    std::fill(tag_msgs_.begin(), tag_msgs_.end(), 0);
    std::fill(tag_words_.begin(), tag_words_.end(), 0);
    std::fill(cp_depth_.begin(), cp_depth_.end(), 0);
    cp_stage_.assign(cp_stage_.size(), CpStage{});
    cp_run_max_ = 0;
    for (std::vector<VertexId>& touched : cp_touched_) touched.clear();
  }
}

void Network::set_fault_seed(std::uint64_t seed) {
  if (!faults_active_) {
    throw std::invalid_argument(
        "Network::set_fault_seed: the network has no fault schedule to "
        "reseed (the FaultPlan is disabled); construct the Network with an "
        "enabled plan instead");
  }
  options_.faults.seed = seed;
  // Same check construction applies: a plan that mutated underneath the
  // seed swap fails loudly here instead of corrupting the next run's
  // schedule.
  options_.faults.validate(n_);
}

RunStats Network::run(std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  if (static_cast<int>(algorithms.size()) != n_) {
    throw std::invalid_argument("need one algorithm per vertex");
  }
  reset_for_run();
  const std::int64_t t0 = ExecutionProfiler::now_ns();
  if (profiler_) profiler_->begin_run(num_shards_);
  if (metrics_) metrics_begin_run();
  TraceSink* const trace = options_.trace;
  if (trace) trace->on_run_begin(n_, g_.num_edges(), options_);
  RunStats stats;
  if (!trace) {
    stats = num_shards_ == 1 ? run_serial(algorithms) : run_parallel(algorithms);
  } else {
    // Workers stash violations instead of calling the sink; clear stale
    // stashes from a previous aborted run before dispatching.
    for (ShardAccum& acc : shard_accum_) acc.violation_armed = false;
    // Abnormal unwinds notify the sink before propagating, so a flight
    // recorder can dump its ring as the post-mortem artifact. Catch order
    // matters: CongestionError is a runtime_error.
    try {
      stats =
          num_shards_ == 1 ? run_serial(algorithms) : run_parallel(algorithms);
    } catch (const CongestionError&) {
      // Emit the lowest armed shard's stashed violation (parallel runs
      // only; the serial path already called the sink at the throw site).
      // run_phases rethrows the lowest shard's exception, so this is the
      // violation the caller sees — and the one the serial loop reports.
      for (const ShardAccum& acc : shard_accum_) {
        if (!acc.violation_armed) continue;
        trace->on_violation(CongestionError(
            acc.violation_kind, acc.violation_round, acc.violation_from,
            acc.violation_to, acc.violation_used, acc.violation_budget));
        break;
      }
      trace->on_abort("congestion");
      throw;
    } catch (const std::runtime_error&) {
      trace->on_abort("max_rounds");
      throw;
    }
    trace->on_run_end(stats);
  }
  if (profiler_) profiler_->end_run();
  stats.duration_ns = ExecutionProfiler::now_ns() - t0;
  if (metrics_) metrics_end_run(stats);
  return stats;
}

RunStats Network::run_serial(
    std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  TraceSink* const trace = options_.trace;
  RunStats stats;
  int unfinished = 0;
  for (VertexId v = 0; v < n_; ++v) {
    finished_[v] = algorithms[v]->finished() ? 1 : 0;
    if (!finished_[v]) ++unfinished;
  }
  for (std::int64_t r = 0;; ++r) {
    if (unfinished == 0 && pending_injected_ == 0) {
      stats.rounds = r;
      return stats;
    }
    // Strict budget: at most max_rounds compute rounds ever execute.
    if (r >= options_.max_rounds) {
      throw std::runtime_error("network: max_rounds exceeded");
    }
    if (churn_active_) {
      if (profiler_) {
        const std::int64_t c0 = ExecutionProfiler::now_ns();
        apply_churn(r, algorithms, unfinished);
        profiler_->add_churn_ns(ExecutionProfiler::now_ns() - c0);
      } else {
        apply_churn(r, algorithms, unfinished);
      }
      if (trace && round_churn_events_ > 0 && trace_round_sampled(r)) {
        trace->on_churn(r, static_cast<int>(round_churn_events_));
      }
    }
    const int out = 1 - in_;
    // One round's partial statistics (num_shards_ == 1 here, so shard 0's
    // accumulator is the round's); folded into `stats` and handed to the
    // observers once delivery completes.
    ShardAccum& racc = shard_accum_[0];
    if (profiler_) profiler_->compute_begin(0);
    compute_shard(0, r, algorithms);
    if (profiler_) {
      profiler_->compute_end(0);
      profiler_->deliver_begin(0);
    }
    const std::int64_t fault_ns = deliver_shard(0, out, r);
    // Traced delivery events replay from the lane deliver_shard filled, in
    // sender-(vertex, port) order — the order the pre-arena simulator
    // emitted and trace fixtures were recorded in. The parallel loop runs
    // the identical replay at its barrier, which is what makes the event
    // stream byte-identical across thread counts (DESIGN.md §18).
    if (trace) trace_replay_round(r, out);
    if (profiler_) {
      profiler_->deliver_end(0, fault_ns);
      profiler_->reduce_begin();
    }
    if (churn_active_) {
      // Fold the round's churn accounting into the shard stats before the
      // observers see them: fired events from apply_churn, dead-port sends
      // staged by the compute phase.
      racc.stats.churn_events += round_churn_events_;
      racc.stats.messages_purged += racc.churn_sends_dropped;
    }
    stats += racc.stats;
    unfinished += racc.unfinished_delta;
    pending_injected_ += racc.injected_delta;
    if (trace && trace_round_sampled(r)) {
      trace->on_round_end(r, racc.stats.messages_sent, racc.stats.words_sent,
                          racc.stats.max_edge_load);
    }
    if (metrics_) {
      metrics_->record_round(racc.stats);
      metrics_apply_round();
    }
    if (profiler_) {
      profiler_->reduce_end();
      profiler_->round_end();
    }
    in_ = out;
  }
}

void Network::compute_shard(
    int s, std::int64_t r,
    std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  ShardAccum& acc = shard_accum_[s];
  acc.unfinished_delta = 0;
  acc.stats.vertices_crashed = 0;
  acc.churn_sends_dropped = 0;
  // Retire this round's crash events first. The schedule is the shard's
  // crash vertices sorted by round (ties in vertex order), so the counting
  // matches the old full-sweep loop exactly — including vertices that were
  // already finished or idle when their crash round arrived, which the
  // worklist below would never visit.
  if (faults_active_) {
    const std::vector<CrashSched>& sched = crash_sched_[s];
    std::size_t& cur = crash_cursor_[s];
    while (cur < sched.size() && sched[cur].round <= r) {
      const VertexId v = sched[cur].vertex;
      ++acc.stats.vertices_crashed;
      if (!finished_[v]) {
        finished_[v] = 1;
        --acc.unfinished_delta;
      }
      ++cur;
    }
  }
  const std::vector<char>& mail_in = mail_[in_];
  const int out = 1 - in_;
  std::vector<VertexId>& wl = worklist_[in_][s];
  std::vector<VertexId>& wl_next = worklist_[out][s];
  std::vector<char>& queued_in = queued_[in_];
  std::vector<char>& queued_out = queued_[out];
  for (const VertexId v : wl) {
    queued_in[v] = 0;
    if (faults_active_ &&
        (r >= crash_round_[v] || (churn_active_ && !present_[v]))) {
      // Crash-stop (the vertex never executes again; the event above
      // already did the bookkeeping) or churned out of the network
      // (apply_churn did the bookkeeping; a later kNodeJoin revives it).
      continue;
    }
    Context& ctx = contexts_[v];
    ctx.round_ = r;
    algorithms[v]->round(ctx);
    if (!finished_[v] || mail_in[v]) {
      const char f = algorithms[v]->finished() ? 1 : 0;
      if (f != finished_[v]) {
        finished_[v] = f;
        acc.unfinished_delta += f ? -1 : 1;
      }
    } else {
      // Quiescence contract (VertexAlgorithm::finished): a finished vertex
      // that received no mail must stay finished.
      assert(algorithms[v]->finished());
    }
    // A still-unfinished vertex steps again next round even without mail.
    if (!finished_[v] && !queued_out[v]) {
      queued_out[v] = 1;
      wl_next.push_back(v);
    }
  }
  wl.clear();
}

std::int64_t Network::deliver_shard(int t, int out, std::int64_t r) {
  std::int64_t fault_ns = 0;
  ShardAccum& acc = shard_accum_[t];
  // Trace lane t is written by this delivery alone (exactly one worker
  // delivers shard t per round, orphans included), so appends here are
  // single-writer; trace_replay_round drains the lanes at the barrier.
  std::vector<std::uint64_t>* const lane =
      options_.trace ? &trace_lane_[t] : nullptr;
  // stats.vertices_crashed and unfinished_delta were written by this
  // shard's compute phase; everything else is this phase's output.
  acc.stats.messages_sent = 0;
  acc.stats.words_sent = 0;
  acc.stats.max_edge_load = 0;
  acc.stats.messages_dropped = 0;
  acc.stats.messages_duplicated = 0;
  acc.stats.messages_delayed = 0;
  acc.stats.churn_events = 0;
  acc.stats.messages_purged = 0;
  acc.injected_delta = 0;
  // Retire shard t's ports of the vacated buffer FIRST: this round's
  // inboxes have been read by the compute phase and the buffer becomes
  // next round's outbox — into which the fault pass below may move delayed
  // messages, so it must already be clear. Buckets (·, t) and shard t's
  // ports of both buffers are touched by worker t alone in this phase.
  for (int s = 0; s < num_shards_; ++s) {
    std::vector<int>& bucket = active_[in_][s * num_shards_ + t];
    for (const int rs : bucket) {
      if (arena_mode_) {
        counts_[in_][rs] = 0;
      } else {
        boxes_[in_][rs].clear();
      }
      if (faults_active_) {
        injected_[in_][rs] = 0;
        if (!arena_mode_) stage_boxes_[in_][rs].clear();
      }
      mail_[in_][port_owner_[rs]] = 0;
    }
    bucket.clear();
  }
  for (int s = 0; s < num_shards_; ++s) {
    for (const int rs : active_[out][s * num_shards_ + t]) {
      if (churn_active_ && !port_on_[rs]) {
        // The edge died under pending traffic: purge fresh sends and
        // delayed injections alike, lazily, here — the port keeps its
        // bucket entry at count 0 (the retire loop clears it next round),
        // so apply_churn never touches the buckets and the zero-alloc
        // reservation argument is unchanged. The fault pass is skipped:
        // nothing on a dead port is ever re-injected.
        int cnt;
        if (arena_mode_) {
          cnt = counts_[out][rs];
          counts_[out][rs] = 0;
        } else {
          cnt = static_cast<int>(boxes_[out][rs].size());
          boxes_[out][rs].clear();
          stage_boxes_[out][rs].clear();
        }
        acc.injected_delta -= injected_[out][rs];
        injected_[out][rs] = 0;
        acc.stats.messages_purged += cnt;
        if (lane && cnt > 0) {
          // Stage the purge for replay: the port is dead, so the replay
          // recognizes the entry by liveness and reads the count from
          // trace_purged_ (the mailbox was just cleared).
          trace_purged_[rs] = cnt;
          lane->push_back(
              (static_cast<std::uint64_t>(reverse_slot_[rs]) << 32) |
              static_cast<std::uint32_t>(rs));
        }
        continue;
      }
      if (faults_active_) {
        if (profiler_) {
          // Gated on both flags: fault-free profiled runs take no extra
          // clock reads per port.
          const std::int64_t f0 = ExecutionProfiler::now_ns();
          apply_port_faults(rs, out, r, acc);
          fault_ns += ExecutionProfiler::now_ns() - f0;
        } else {
          apply_port_faults(rs, out, r, acc);
        }
      }
      std::int64_t edge_words = 0;
      const Message* msgs;
      int cnt;
      if (arena_mode_) {
        msgs = slab_[out].data() + static_cast<std::size_t>(rs) * slot_cap_;
        cnt = counts_[out][rs];
      } else {
        const auto& box = boxes_[out][rs];
        msgs = box.data();
        cnt = static_cast<int>(box.size());
      }
      if (cnt == 0) continue;  // every message on the port dropped/delayed
      if (lane) {
        // Post-fault delivered traffic: the slot contents stay intact until
        // this buffer is retired during the *next* round's delivery, so the
        // barrier-time replay reads them in place.
        lane->push_back(
            (static_cast<std::uint64_t>(reverse_slot_[rs]) << 32) |
            static_cast<std::uint32_t>(rs));
      }
      if (metrics_) {
        edge_words = metrics_account_port(t, rs, msgs, cnt, r);
      } else {
        for (int i = 0; i < cnt; ++i) edge_words += msgs[i].size_words();
      }
      acc.stats.messages_sent += cnt;
      acc.stats.words_sent += edge_words;
      acc.stats.max_edge_load = std::max(acc.stats.max_edge_load, cnt);
      const VertexId to = port_owner_[rs];
      mail_[out][to] = 1;
      // Fresh mail activates the receiver: queue it for next round's
      // compute. Shard t's worklist and queued flags are touched by the
      // worker delivering t alone, so the single-writer discipline holds.
      if (!queued_[out][to]) {
        queued_[out][to] = 1;
        worklist_[out][t].push_back(to);
      }
    }
  }
  return fault_ns;
}

void Network::apply_port_faults(int rs, int out, std::int64_t r,
                                ShardAccum& acc) {
  const int next = 1 - out;  // just retired; becomes next round's outbox
  const FaultPlan& plan = options_.faults;
  if (arena_mode_) {
    Message* const slots =
        slab_[out].data() + static_cast<std::size_t>(rs) * slot_cap_;
    signed char* const stages =
        stage_slab_[out].data() + static_cast<std::size_t>(rs) * slot_cap_;
    const int cnt = counts_[out][rs];
    const int inj = injected_[out][rs];
    int w = 0;       // survivors compacted to [0, w)
    int copies = 0;  // duplicate copies staged at [cnt, cnt + copies)
    for (int i = 0; i < cnt; ++i) {
      if (i < inj) {
        // Injected by an earlier round's delay decision: count down its
        // remaining passes; faults are never re-applied to it.
        if (stages[i] > 0) {
          inject_delayed(next, rs, std::move(slots[i]),
                         static_cast<signed char>(stages[i] - 1));
          continue;
        }
        --acc.injected_delta;  // finally delivered
        if (w != i) slots[w] = std::move(slots[i]);
        ++w;
        continue;
      }
      const FaultDecision d = fault_decision(plan, r, rs, i);
      if (d.action == FaultAction::kDrop) {
        ++acc.stats.messages_dropped;
        continue;
      }
      if (d.action == FaultAction::kDelay) {
        ++acc.stats.messages_delayed;
        ++acc.injected_delta;
        inject_delayed(next, rs, std::move(slots[i]),
                       static_cast<signed char>(d.delay_rounds - 1));
        continue;
      }
      if (d.action == FaultAction::kDuplicate) {
        ++acc.stats.messages_duplicated;
        assert(cnt + copies < slot_cap_);
        slots[cnt + copies] = slots[i];  // the copy trails every original
        ++copies;
      }
      if (w != i) slots[w] = std::move(slots[i]);
      ++w;
    }
    if (w != cnt) {
      // Close the gap so the duplicate copies directly follow the
      // survivors (ranges are disjoint: w + copies <= cnt when w < cnt).
      for (int j = 0; j < copies; ++j) {
        slots[w + j] = std::move(slots[cnt + j]);
      }
    }
    counts_[out][rs] = w + copies;
    injected_[out][rs] = 0;
  } else {
    auto& box = boxes_[out][rs];
    auto& stages = stage_boxes_[out][rs];
    const int cnt = static_cast<int>(box.size());
    const int inj = injected_[out][rs];
    assert(static_cast<int>(stages.size()) == inj);
    int w = 0;
    int copies = 0;
    for (int i = 0; i < cnt; ++i) {
      if (i < inj) {
        if (stages[i] > 0) {
          inject_delayed(next, rs, std::move(box[i]),
                         static_cast<signed char>(stages[i] - 1));
          continue;
        }
        --acc.injected_delta;
        if (w != i) box[w] = std::move(box[i]);
        ++w;
        continue;
      }
      const FaultDecision d = fault_decision(plan, r, rs, i);
      if (d.action == FaultAction::kDrop) {
        ++acc.stats.messages_dropped;
        continue;
      }
      if (d.action == FaultAction::kDelay) {
        ++acc.stats.messages_delayed;
        ++acc.injected_delta;
        inject_delayed(next, rs, std::move(box[i]),
                       static_cast<signed char>(d.delay_rounds - 1));
        continue;
      }
      if (d.action == FaultAction::kDuplicate) {
        ++acc.stats.messages_duplicated;
        box.push_back(box[i]);
        ++copies;
      }
      if (w != i) box[w] = std::move(box[i]);
      ++w;
    }
    if (w != cnt) {
      for (int j = 0; j < copies; ++j) box[w + j] = std::move(box[cnt + j]);
    }
    box.resize(w + copies);
    stages.clear();
    injected_[out][rs] = 0;
  }
}

void Network::inject_delayed(int buf, int rs, Message&& m, signed char stage) {
  // Called from the delivery phase only, after buffer `buf` was retired and
  // before any compute-phase send lands in it — so port rs of `buf` holds
  // injected messages exclusively and the append below keeps the invariant
  // that they form the slot prefix. The active-bucket append happens at
  // most once per port per round (0 -> 1 transition) and the buckets are
  // reserved to their port-count ceiling, so it never allocates.
  if (arena_mode_) {
    const int idx = counts_[buf][rs];
    assert(idx == injected_[buf][rs]);
    assert(idx < slot_cap_);
    if (idx == 0) {
      active_[buf][send_bucket_[reverse_slot_[rs]]].push_back(rs);
    }
    const std::size_t at = static_cast<std::size_t>(rs) * slot_cap_ + idx;
    slab_[buf][at] = std::move(m);
    stage_slab_[buf][at] = stage;
    counts_[buf][rs] = idx + 1;
    injected_[buf][rs] = idx + 1;
  } else {
    auto& box = boxes_[buf][rs];
    if (box.empty()) {
      active_[buf][send_bucket_[reverse_slot_[rs]]].push_back(rs);
    }
    box.push_back(std::move(m));
    stage_boxes_[buf][rs].push_back(stage);
    injected_[buf][rs] = static_cast<int>(box.size());
  }
}

void Network::apply_churn(
    std::int64_t r, std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms,
    int& unfinished) {
  // Caller thread, between rounds: after the termination check (events past
  // the end of a run never fire) and before the member census, so a joined
  // vertex is counted and dispatched this same round. Everything below
  // touches preallocated state only — liveness flags, presence flags, the
  // reserved worklists — never the mailbox buckets: traffic stranded on a
  // dead port is purged lazily by the next deliver_shard that scans it,
  // which keeps the zero-alloc bucket discipline intact.
  round_churn_events_ = 0;
  TraceSink* const trace =
      options_.trace && trace_round_sampled(r) ? options_.trace : nullptr;
  while (churn_cursor_ < churn_sched_.size() &&
         churn_sched_[churn_cursor_].round <= r) {
    const ChurnSched& e = churn_sched_[churn_cursor_];
    ++churn_cursor_;
    ++round_churn_events_;
    if (trace) {
      // Per-event stream, schedule order, caller thread (both round
      // loops): edge events carry both endpoints, node events carry u
      // alone. The lump on_churn(r, count) still follows once the loop
      // drains.
      trace->on_churn_event(
          r, e.kind, e.kind == ChurnKind::kNodeLeave ||
                             e.kind == ChurnKind::kNodeJoin
                         ? e.u
                         : port_owner_[e.gp],
          e.gp >= 0 ? port_peer_[e.gp] : graph::kInvalidVertex);
    }
    switch (e.kind) {
      case ChurnKind::kEdgeDelete:
        port_on_[e.gp] = 0;
        port_on_[e.rs] = 0;
        break;
      case ChurnKind::kEdgeInsert:
        port_on_[e.gp] = 1;
        port_on_[e.rs] = 1;
        break;
      case ChurnKind::kNodeLeave: {
        const VertexId u = e.u;
        if (!present_[u]) break;  // already gone: no-op (still counted)
        present_[u] = 0;
        // Like a crash for termination purposes: an absent vertex counts
        // as finished so the run can still quiesce.
        if (!finished_[u]) {
          finished_[u] = 1;
          --unfinished;
        }
        // Leaving takes the incident live edges down with it.
        for (int p = port_base_[u]; p < port_base_[u + 1]; ++p) {
          if (port_on_[p]) {
            port_on_[p] = 0;
            port_on_[reverse_slot_[p]] = 0;
          }
        }
        break;
      }
      case ChurnKind::kNodeJoin: {
        const VertexId u = e.u;
        if (present_[u]) break;  // already here: no-op (still counted)
        present_[u] = 1;
        // Crash-stop wins over rejoin: a vertex whose crash round has
        // passed re-enters the topology but never executes again, so it
        // must stay finished — resurrecting it into the unfinished count
        // would leave a vertex the compute phase always skips and the run
        // could never quiesce.
        if (r >= crash_round_[u]) break;
        // Re-sync the finished cache with the algorithm (leave forced it to
        // 1) and re-queue the vertex on its owning shard's worklist so this
        // round's compute steps it. Edges are NOT restored — the plan
        // schedules explicit kEdgeInsert events for re-established links.
        const char f = algorithms[u]->finished() ? 1 : 0;
        if (f != finished_[u]) {
          finished_[u] = f;
          unfinished += f ? -1 : 1;
        }
        if (!finished_[u] && !queued_[in_][u]) {
          const int s =
              static_cast<int>(std::upper_bound(shard_begin_.begin(),
                                                shard_begin_.end(), u) -
                               shard_begin_.begin()) -
              1;
          queued_[in_][u] = 1;
          worklist_[in_][s].push_back(u);
        }
        break;
      }
    }
  }
}

void Network::trace_replay_round(std::int64_t r, int out) {
  TraceSink* const trace = options_.trace;
  const TraceConfig& cfg = options_.trace_config;
  const bool sampled = cfg.round_sampled(r);
  // Drain the lanes in shard order, then sort into sender-(vertex, port)
  // order: the packed key puts the sender's global port above the receiver
  // port, so a plain integer sort yields the replay order the pre-arena
  // simulator emitted and every fixture was recorded in. The merge is the
  // same whatever shard wrote which lane — that is the byte-identity
  // argument (DESIGN.md §18).
  trace_order_.clear();
  for (std::vector<std::uint64_t>& lane : trace_lane_) {
    trace_order_.insert(trace_order_.end(), lane.begin(), lane.end());
    lane.clear();
  }
  std::sort(trace_order_.begin(), trace_order_.end());
  for (const std::uint64_t key : trace_order_) {
    const int rs = static_cast<int>(key & 0xffffffffu);
    if (churn_active_ && !port_on_[rs]) {
      // Port liveness only changes between rounds (apply_churn, caller
      // thread), so a dead port here was dead at delivery: this lane entry
      // was a purge, and its count was staged because the mailbox is
      // already cleared. Reset the stage even on sampled-out rounds.
      const int purged = trace_purged_[rs];
      trace_purged_[rs] = 0;
      if (sampled && purged > 0) {
        trace->on_churn_purge(r, port_peer_[rs], port_owner_[rs], purged);
      }
      continue;
    }
    if (!sampled) continue;
    const VertexId to = port_owner_[rs];
    if (!cfg.vertex_sampled(to)) continue;
    // Post-fault delivered messages: buffer `out` keeps them intact until
    // it is retired during the next round's delivery, so the replay reads
    // them in place on the caller thread.
    const Message* msgs;
    int cnt;
    if (arena_mode_) {
      msgs = slab_[out].data() + static_cast<std::size_t>(rs) * slot_cap_;
      cnt = counts_[out][rs];
    } else {
      const auto& box = boxes_[out][rs];
      msgs = box.data();
      cnt = static_cast<int>(box.size());
    }
    std::int64_t edge_words = 0;
    for (int i = 0; i < cnt; ++i) {
      edge_words += msgs[i].size_words();
      if (cfg.tag_sampled(msgs[i].tag)) {
        trace->on_message(r, msgs[i].tag, msgs[i].size_words());
      }
    }
    trace->on_edge_load(r, port_peer_[rs], to, cnt, edge_words);
  }
}

void Network::trace_violation(const CongestionError& err, int shard) {
  if (num_shards_ == 1) {
    // Serial: the sink call is safe (and the fixtures expect it) right at
    // the throw site.
    options_.trace->on_violation(err);
    return;
  }
  // Parallel: workers must not call the sink. Stash the shard's first
  // violation; run() emits the lowest armed shard's record before
  // rethrowing — the exception run_phases rethrows is the lowest shard's,
  // so sink and exception agree like they do serially.
  ShardAccum& acc = shard_accum_[shard];
  if (acc.violation_armed) return;
  acc.violation_armed = true;
  acc.violation_kind = err.kind();
  acc.violation_round = err.round();
  acc.violation_from = err.from();
  acc.violation_to = err.to();
  acc.violation_used = err.used();
  acc.violation_budget = err.budget();
}

RunStats Network::run_parallel(
    std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  TraceSink* const trace = options_.trace;
  RunStats stats;
  int unfinished = 0;
  for (VertexId v = 0; v < n_; ++v) {
    finished_[v] = algorithms[v]->finished() ? 1 : 0;
    if (!finished_[v]) ++unfinished;
  }
  for (std::int64_t r = 0;; ++r) {
    if (unfinished == 0 && pending_injected_ == 0) {
      stats.rounds = r;
      return stats;
    }
    if (r >= options_.max_rounds) {
      throw std::runtime_error("network: max_rounds exceeded");
    }
    // Churn fires on the caller thread before the member census, so a
    // joined vertex is counted (and its shard dispatched) this round, and
    // the applied liveness flags are visible to every worker via the
    // dispatch barrier. This is the only churn serialization point — the
    // phases themselves just read the flags.
    if (churn_active_) {
      if (profiler_) {
        const std::int64_t c0 = ExecutionProfiler::now_ns();
        apply_churn(r, algorithms, unfinished);
        profiler_->add_churn_ns(ExecutionProfiler::now_ns() - c0);
      } else {
        apply_churn(r, algorithms, unfinished);
      }
      if (trace && round_churn_events_ > 0 && trace_round_sampled(r)) {
        trace->on_churn(r, static_cast<int>(round_churn_events_));
      }
    }
    const int out = 1 - in_;
    // Member census (caller, O(num_shards_)): a shard participates when it
    // has queued vertices or a crash event due this round. Shards out of
    // the round are never rung — their workers stay parked — but their
    // ports can still receive fresh mail or carry delayed injections, so
    // members deliver the orphaned shards round-robin by rank.
    std::int64_t total_active = 0;
    int member_count = 0;
    for (int s = 0; s < num_shards_; ++s) {
      total_active += static_cast<std::int64_t>(worklist_[in_][s].size());
      const bool in_round = !worklist_[in_][s].empty() ||
                            (faults_active_ && crash_due(s, r));
      member_[s] = in_round ? 1 : 0;
      if (in_round) ++member_count;
    }
    if (!member_[0]) {
      member_[0] = 1;  // the caller's slice always participates
      ++member_count;
    }
    const bool serial_round =
        member_count <= 1 || (options_.sparse_serial_threshold > 0 &&
                              total_active <= options_.sparse_serial_threshold);
    if (serial_round) {
      // Sparse fast path: the whole round runs inline on the caller — no
      // dispatch, no barriers. The decision is a pure function of the
      // active-vertex count, which does not depend on the thread count, so
      // results and metrics stay bit-identical across shard counts (the
      // per-shard accounting below folds in shard order either way).
      if (profiler_) profiler_->compute_begin(0);
      for (int s = 0; s < num_shards_; ++s) {
        if (member_[s]) {
          compute_shard(s, r, algorithms);
        } else {
          ShardAccum& acc = shard_accum_[s];
          acc.unfinished_delta = 0;
          acc.stats.vertices_crashed = 0;
          acc.churn_sends_dropped = 0;
        }
      }
      if (profiler_) {
        profiler_->compute_end(0);
        profiler_->deliver_begin(0);
      }
      std::int64_t fault_ns = 0;
      for (int t = 0; t < num_shards_; ++t) {
        fault_ns += deliver_shard(t, out, r);
      }
      if (profiler_) {
        profiler_->deliver_end(0, fault_ns);
        profiler_->mark_idle_others();
      }
    } else {
      // Fused round: one dispatch runs both phases with a single internal
      // barrier between them (the final barrier doubles as the round's
      // quiesce point). Deposits land in disjoint slot groups and
      // single-writer active buckets, so the only shared writes are each
      // shard's own finished_ range, worklists and accumulator. An
      // exception (CongestionError, bad port) skips phase 1 team-wide,
      // quiesces at the pool barrier and rethrows here; reset_for_run() on
      // the next run() clears the partial round, so the Network stays
      // reusable.
      orphans_.clear();
      int rank = 0;
      for (int s = 0; s < num_shards_; ++s) {
        if (member_[s]) {
          member_rank_[s] = rank++;
        } else {
          member_rank_[s] = -1;
          orphans_.push_back(s);
          ShardAccum& acc = shard_accum_[s];
          acc.unfinished_delta = 0;
          acc.stats.vertices_crashed = 0;
          acc.churn_sends_dropped = 0;
        }
      }
      round_member_count_ = member_count;
      // The dispatch mark is written before the pool rings the doorbells
      // (seq_cst), so every shard's compute_begin reads it happens-after.
      if (profiler_) profiler_->mark_dispatch();
      pool_ptr_->run_phases(member_.data(), [&](int s, int phase) {
        if (phase == 0) {
          if (profiler_) profiler_->compute_begin(s);
          compute_shard(s, r, algorithms);
          if (profiler_) profiler_->compute_end(s);
        } else {
          if (profiler_) profiler_->deliver_begin(s);
          const std::int64_t fns = deliver_shard(s, out, r);
          if (profiler_) profiler_->deliver_end(s, fns);
          // Orphan delivery, rank-strided: each non-member shard is
          // delivered by exactly one member, preserving the per-shard
          // single-writer discipline; its lane gets a deliver-only row.
          for (std::size_t j = static_cast<std::size_t>(member_rank_[s]);
               j < orphans_.size(); j += static_cast<std::size_t>(
                                        round_member_count_)) {
            const int t = orphans_[j];
            if (profiler_) profiler_->deliver_begin(t);
            const std::int64_t ofns = deliver_shard(t, out, r);
            if (profiler_) profiler_->deliver_end(t, ofns);
          }
        }
      });
    }
    // Every delivery is behind the dispatch barrier (or ran inline on the
    // sparse path), so the lanes are complete: replay the round's trace
    // events on the caller, in the same sorted order the serial loop uses.
    if (trace) trace_replay_round(r, out);
    // Barrier reduction in shard order: the per-round RunStats is combined
    // once so it can feed both the run totals and the metrics registry.
    if (profiler_) profiler_->reduce_begin();
    RunStats round;
    for (const ShardAccum& acc : shard_accum_) {
      round += acc.stats;
      unfinished += acc.unfinished_delta;
      pending_injected_ += acc.injected_delta;
      round.messages_purged += acc.churn_sends_dropped;
    }
    if (churn_active_) round.churn_events += round_churn_events_;
    stats += round;
    if (trace && trace_round_sampled(r)) {
      trace->on_round_end(r, round.messages_sent, round.words_sent,
                          round.max_edge_load);
    }
    if (metrics_) {
      metrics_->record_round(round);
      metrics_apply_round();
    }
    if (profiler_) {
      profiler_->reduce_end();
      profiler_->round_end();
    }
    in_ = out;
  }
}

void Network::metrics_begin_run() {
  // The staged scratch (edge/tag/critical-path accumulators) was already
  // cleared by reset_for_run() on run entry; this hook only opens the
  // registry run.
  metrics_->begin_run(n_, g_.num_edges());
}

// This is the only per-port, per-round metrics cost, and dense workloads
// (every vertex sends every round) make it the whole metrics overhead —
// keep it one fused pass and branch-light. The inline hint matters: both
// callers live in this TU and the delivery loop is small enough that the
// out-of-line call was measurable (see EXPERIMENTS.md E15).
ECD_METRICS_HOT std::int64_t Network::metrics_account_port(
    int shard, int rs, const Message* msgs, int cnt, std::int64_t r) {
  std::int64_t* const tm =
      tag_msgs_.data() + static_cast<std::size_t>(shard) * kMetricsTagSlots;
  std::int64_t* const tw =
      tag_words_.data() + static_cast<std::size_t>(shard) * kMetricsTagSlots;
  std::int64_t edge_words = 0;
  for (int i = 0; i < cnt; ++i) {
    const int w = msgs[i].size_words();
    const int slot = metrics_tag_slot(msgs[i].tag);
    edge_words += w;
    ++tm[slot];
    tw[slot] += w;
  }
  EdgeAccum& e = edge_accum_[rs];
  e.messages += cnt;
  e.words += edge_words;
  if (cnt > e.peak) e.peak = cnt;
  // Critical path: a delivered batch extends the sender's causal chain by
  // one link. The candidate depth reads the sender's depth from the start
  // of this round (cp_depth_ is only mutated at the barrier), and the
  // receiver's staged maximum is single-writer: vertex `to` lives in this
  // shard, and this shard's worker scans all of its receiving ports.
  // Candidates that cannot raise the receiver's depth are dropped here —
  // the barrier merge is `max(depth, staged)`, so they are no-ops there.
  const VertexId to = port_owner_[rs];
  const std::int32_t cand = cp_depth_[port_peer_[rs]] + 1;
  if (cand > cp_depth_[to]) {
    CpStage& st = cp_stage_[to];
    if (st.stamp != r) {
      st.stamp = r;
      st.depth = cand;
      cp_touched_[shard].push_back(to);
    } else if (cand > st.depth) {
      st.depth = cand;
    }
  }
  return edge_words;
}

void Network::metrics_apply_round() {
  // Caller thread, at the barrier. The max-merge makes the result
  // independent of both shard order and within-shard staging order.
  for (int s = 0; s < num_shards_; ++s) {
    for (const VertexId v : cp_touched_[s]) {
      if (cp_stage_[v].depth > cp_depth_[v]) {
        cp_depth_[v] = cp_stage_[v].depth;
        if (cp_depth_[v] > cp_run_max_) cp_run_max_ = cp_depth_[v];
      }
    }
    cp_touched_[s].clear();
  }
}

void Network::metrics_end_run(const RunStats& stats) {
  // Tag rows reduce across shards in slot order; edge accumulators flush
  // in port order. Both orders are fixed, so the registry sees the same
  // sequence whatever num_shards_ is.
  for (int slot = 0; slot < kMetricsTagSlots; ++slot) {
    std::int64_t messages = 0;
    std::int64_t words = 0;
    for (int s = 0; s < num_shards_; ++s) {
      const std::size_t at =
          static_cast<std::size_t>(s) * kMetricsTagSlots + slot;
      messages += tag_msgs_[at];
      words += tag_words_[at];
    }
    if (messages != 0) metrics_->record_tag_slot(slot, messages, words);
  }
  for (int gp = 0; gp < num_dir_ports_; ++gp) {
    const EdgeAccum& e = edge_accum_[gp];
    if (e.messages == 0) continue;
    metrics_->record_edge(port_peer_[gp], port_owner_[gp], e.messages,
                          e.words, static_cast<int>(e.peak));
  }
  metrics_->end_run(stats, cp_run_max_);
}

}  // namespace ecd::congest
