#include "src/congest/fault.h"

#include <sstream>
#include <stdexcept>

namespace ecd::congest {

void FaultPlan::validate(int num_vertices) const {
  auto bad = [](const char* what) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what);
  };
  if (drop_probability < 0.0 || duplicate_probability < 0.0 ||
      delay_probability < 0.0) {
    bad("fault probabilities must be non-negative");
  }
  if (drop_probability + duplicate_probability + delay_probability > 1.0) {
    bad("drop + duplicate + delay probabilities exceed 1");
  }
  if (delay_probability > 0.0 && max_delay_rounds < 1) {
    bad("delay enabled with max_delay_rounds < 1");
  }
  // Remaining-pass counters are stored as signed char in the simulator.
  if (delay_probability > 0.0 && max_delay_rounds > 127) {
    bad("max_delay_rounds exceeds 127");
  }
  if (first_faulty_round > last_faulty_round) {
    bad("first_faulty_round > last_faulty_round");
  }
  for (const CrashEvent& c : crashes) {
    if (c.vertex < 0 || c.vertex >= num_vertices) {
      std::ostringstream os;
      os << "FaultPlan: crash names vertex " << c.vertex
         << " outside [0, " << num_vertices << ")";
      throw std::invalid_argument(os.str());
    }
    if (c.round < 0) bad("crash round must be >= 0");
  }
  for (const ChurnEvent& e : churn) {
    const bool edge_event =
        e.kind == ChurnKind::kEdgeInsert || e.kind == ChurnKind::kEdgeDelete;
    auto check_vertex = [&](graph::VertexId v, const char* which) {
      if (v < 0 || v >= num_vertices) {
        std::ostringstream os;
        os << "FaultPlan: churn event names " << which << " vertex " << v
           << " outside [0, " << num_vertices << ")";
        throw std::invalid_argument(os.str());
      }
    };
    check_vertex(e.u, "first");
    if (edge_event) {
      check_vertex(e.v, "second");
      if (e.u == e.v) bad("churn edge event is a self loop");
    }
    if (e.round < 0) bad("churn event round must be >= 0");
  }
}

}  // namespace ecd::congest
