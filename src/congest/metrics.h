// Always-on, parallel-safe metrics for the CONGEST simulator
// (DESIGN.md §13 "Metrics registry").
//
// The legacy TraceSink (src/congest/trace.h) streams one callback per
// event, which pins a Network to the serial round loop. This registry is
// the aggregate-only counterpart: the Network accumulates per-tag traffic,
// per-edge high-water marks and causal-depth ("critical path") updates in
// per-shard, cache-line-padded rows during the round, and reduces them on
// the orchestrating thread at the existing round barrier — the same
// pattern as the ShardAccum stat reduction of DESIGN.md §11. Snapshots are
// therefore bit-identical for every NetworkOptions::num_threads value, and
// the steady state of a run allocates nothing (registration, phase opens
// and first-time edge observations allocate; round-path updates never do).
//
// What a registry holds:
//   * grand totals (RunStats summed over observed runs) and per-round
//     log-bucketed histograms of messages / words / max edge load;
//   * per-message-tag message/word counts (fixed slot table, so the round
//     path indexes an array instead of hashing);
//   * per-directed-edge totals and peak single-round load;
//   * the critical-path estimate: the longest causal message chain — each
//     delivered message extends a chain one link past its sender's depth
//     at the start of the delivering round (DESIGN.md §13 for why this
//     lower-bounds any completion-time schedule of the same run);
//   * named counters / gauges / histograms for algorithm-layer facts
//     (gather retransmissions, epochs, re-elections, ...);
//   * a stack of "phases" (MetricsPhase RAII, mirrors TRACE_SPAN): every
//     round and tag record accrues to each open phase, so a
//     partition_and_gather run yields per-phase round/bandwidth
//     histograms without any per-event callback.
//
// write_json() emits the whole snapshot deterministically (fixed key
// order, sorted edges/counters, integer-only values) — the thread-count
// determinism tests literally compare snapshot strings. write_run_report()
// wraps a snapshot in the "ecd-run-report-v1" schema consumed by
// `ecd_cli report` (schema documented in DESIGN.md §13).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/congest/message.h"
#include "src/congest/network.h"

namespace ecd::congest {

// --- Log-bucketed histogram ------------------------------------------------

// Power-of-two bucketed histogram of non-negative 64-bit samples: bucket 0
// holds value 0, bucket b >= 1 holds values with bit_width b, i.e. the
// range [2^(b-1), 2^b - 1]. 64 buckets cover every int64 value, recording
// is two adds and an index computation, and merging is element-wise — the
// properties the per-round path and the barrier reduction need.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  static int bucket_of(std::int64_t value) {
    if (value <= 0) return 0;
    int b = 0;
    for (std::uint64_t v = static_cast<std::uint64_t>(value); v != 0; v >>= 1) {
      ++b;
    }
    return b;
  }
  // Largest value bucket b accepts (inclusive).
  static std::int64_t bucket_upper_bound(int b);

  void record(std::int64_t value) {
    if (value < 0) value = 0;
    ++counts_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }
  void merge(const LogHistogram& other);
  void clear();

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }
  std::int64_t bucket_count(int b) const { return counts_[b]; }
  // Upper bound of the bucket containing the p-th percentile sample
  // (p in [0,100]); 0 when empty. An estimate: exact within its bucket's
  // factor-of-two resolution.
  std::int64_t percentile(double p) const;

 private:
  std::array<std::int64_t, kBuckets> counts_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

// --- Tag slot table ---------------------------------------------------------

// The round path attributes traffic to a fixed slot table instead of a
// hash map: well-known tags [0, kTagUserBase) map to themselves, the first
// kMetricsUserTagSlots user tags map after them, and everything else (deep
// user tags, invalid negatives) shares one overflow slot.
inline constexpr int kMetricsUserTagSlots = 15;
inline constexpr int kMetricsTagSlots = kTagUserBase + kMetricsUserTagSlots + 1;
inline constexpr int kMetricsOverflowSlot = kMetricsTagSlots - 1;

inline int metrics_tag_slot(int tag) {
  if (tag >= 0 && tag < kTagUserBase) return tag;
  const int user = tag - kTagUserBase;
  if (user >= 0 && user < kMetricsUserTagSlots) return kTagUserBase + user;
  return kMetricsOverflowSlot;
}
// Representative tag id of a slot (the overflow slot has none and
// returns -1).
inline int metrics_slot_tag(int slot) {
  return slot == kMetricsOverflowSlot ? -1 : slot;
}

struct TagTraffic {
  std::int64_t messages = 0;
  std::int64_t words = 0;
};

// --- Aggregate record types -------------------------------------------------

struct EdgeLoadStats {
  graph::VertexId from = graph::kInvalidVertex;
  graph::VertexId to = graph::kInvalidVertex;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int peak_load = 0;  // max messages delivered in a single round
};

// One named phase (MetricsPhase). Phases accrue every round and tag record
// that happens while they are open, so a parent's numbers include its
// children's — the same containment rule as SpanStats.
struct PhaseMetrics {
  std::string name;
  int depth = 0;  // 0 = top-level
  bool closed = false;
  std::int64_t runs = 0;  // Network runs that *ended* while open
  // rounds/messages/words/max_edge_load/fault counters accrued while open.
  RunStats stats;
  // Longest causal chain, summed over the runs that ended while open.
  std::int64_t critical_path = 0;
  LogHistogram round_messages;
  LogHistogram round_words;
  LogHistogram round_edge_load;
  std::array<TagTraffic, kMetricsTagSlots> tags{};
};

// --- The registry -----------------------------------------------------------

class MetricsRegistry {
 public:
  // Named instruments. Registration (first lookup of a name) allocates a
  // map node; increments on the returned pointer never do, and the pointer
  // stays valid for the registry's lifetime.
  class Counter {
   public:
    void add(std::int64_t delta) { value_ += delta; }
    void increment() { ++value_; }
    std::int64_t value() const { return value_; }

   private:
    friend class MetricsRegistry;
    std::int64_t value_ = 0;
  };
  class Gauge {
   public:
    void set(std::int64_t value) {
      value_ = value;
      if (value > max_) max_ = value;
    }
    std::int64_t value() const { return value_; }
    std::int64_t max() const { return max_; }

   private:
    friend class MetricsRegistry;
    std::int64_t value_ = 0;
    std::int64_t max_ = 0;
  };

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  LogHistogram* histogram(std::string_view name);

  // --- Collection hooks (called by Network) --------------------------------
  // All run on the orchestrating thread: begin_run/end_run bracket a
  // Network::run, record_round fires once per executed round at the round
  // barrier, and the tag/edge flushes happen inside end_run's caller.
  void begin_run(int num_vertices, int num_edges);
  // One executed round's deltas; `round.rounds` is ignored (each call
  // counts as exactly one round).
  void record_round(const RunStats& round);
  void record_tag_slot(int slot, std::int64_t messages, std::int64_t words);
  void record_edge(graph::VertexId from, graph::VertexId to,
                   std::int64_t messages, std::int64_t words, int peak_load);
  // `run_totals` is the finished run's RunStats (already accrued round by
  // round — only run/critical-path bookkeeping happens here).
  void end_run(const RunStats& run_totals, std::int64_t critical_path);

  // --- Phases ---------------------------------------------------------------
  void phase_begin(std::string name);
  void phase_end();

  // --- Snapshot accessors ---------------------------------------------------
  const RunStats& totals() const { return totals_; }
  std::int64_t runs_observed() const { return runs_; }
  std::int64_t critical_path_total() const { return cp_total_; }
  std::int64_t critical_path_longest_run() const { return cp_longest_; }
  const LogHistogram& round_messages_histogram() const {
    return round_messages_;
  }
  const LogHistogram& round_words_histogram() const { return round_words_; }
  const LogHistogram& round_edge_load_histogram() const {
    return round_edge_load_;
  }
  const std::array<TagTraffic, kMetricsTagSlots>& tag_slots() const {
    return tags_;
  }
  std::int64_t tag_messages(int tag) const {
    return tags_[metrics_tag_slot(tag)].messages;
  }
  std::int64_t tag_words(int tag) const {
    return tags_[metrics_tag_slot(tag)].words;
  }
  // Phases in opening order (pre-order of the phase tree).
  const std::vector<PhaseMetrics>& phases() const { return phases_; }
  // Directed edges by (messages desc, from, to) — a total order, so the
  // cut at k is deterministic. k < 0 returns all edges.
  std::vector<EdgeLoadStats> top_edges(int k) const;

  // Deterministic full snapshot: fixed key order, sorted collections,
  // integer values only. Equal snapshots <=> equal observed histories,
  // which is how the cross-thread determinism tests compare registries.
  void write_json(std::ostream& os, int top_k_edges = 16) const;
  std::string to_json(int top_k_edges = 16) const;

  void reset();

 private:
  RunStats totals_;
  std::int64_t runs_ = 0;
  std::int64_t cp_total_ = 0;
  std::int64_t cp_longest_ = 0;
  LogHistogram round_messages_;
  LogHistogram round_words_;
  LogHistogram round_edge_load_;
  std::array<TagTraffic, kMetricsTagSlots> tags_{};
  std::vector<PhaseMetrics> phases_;
  std::vector<std::size_t> open_;  // indices into phases_
  std::unordered_map<std::uint64_t, EdgeLoadStats> edges_;
  // std::map: node-based, so instrument pointers stay stable forever.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LogHistogram, std::less<>> histograms_;
};

// RAII phase guard; null registry => no-op. Safe to use alongside
// TRACE_SPAN — the two layers are independent.
class MetricsPhase {
 public:
  MetricsPhase(MetricsRegistry* registry, std::string_view name)
      : registry_(registry) {
    if (registry_) registry_->phase_begin(std::string(name));
  }
  MetricsPhase(const MetricsPhase&) = delete;
  MetricsPhase& operator=(const MetricsPhase&) = delete;
  ~MetricsPhase() {
    if (registry_) registry_->phase_end();
  }

 private:
  MetricsRegistry* registry_;
};

// --- Run report --------------------------------------------------------------

struct RunReportContext {
  // Free-form description of what produced the metrics (shown verbatim).
  std::string title;
  // Extra key/value context, emitted in the given order.
  std::vector<std::pair<std::string, std::string>> info;
  int top_k_edges = 10;
};

// Emits the "ecd-run-report-v1" JSON document: {"schema", "title", "info",
// "metrics": <registry snapshot>}. Schema spelled out in DESIGN.md §13.
void write_run_report(std::ostream& os, const MetricsRegistry& metrics,
                      const RunReportContext& context = {});

}  // namespace ecd::congest
