#include "src/congest/metrics.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

namespace ecd::congest {

// --- LogHistogram ------------------------------------------------------------

std::int64_t LogHistogram::bucket_upper_bound(int b) {
  if (b <= 0) return 0;
  if (b >= kBuckets - 1) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << b) - 1;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void LogHistogram::clear() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::int64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the p-th percentile sample, 1-based, nearest-rank method.
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(p / 100.0 * static_cast<double>(count_) +
                                   0.5));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // The top bucket's nominal bound is int64 max; the recorded max is
      // the honest answer there.
      return std::min(bucket_upper_bound(b), max_);
    }
  }
  return max_;
}

// --- MetricsRegistry: instruments -------------------------------------------

MetricsRegistry::Counter* MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

MetricsRegistry::Gauge* MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

LogHistogram* MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

// --- MetricsRegistry: collection hooks --------------------------------------

void MetricsRegistry::begin_run(int num_vertices, int num_edges) {
  (void)num_vertices, (void)num_edges;
}

void MetricsRegistry::record_round(const RunStats& round) {
  const auto accrue = [&](RunStats& stats) {
    ++stats.rounds;
    stats.messages_sent += round.messages_sent;
    stats.words_sent += round.words_sent;
    stats.max_edge_load = std::max(stats.max_edge_load, round.max_edge_load);
    stats.messages_dropped += round.messages_dropped;
    stats.messages_duplicated += round.messages_duplicated;
    stats.messages_delayed += round.messages_delayed;
    stats.vertices_crashed += round.vertices_crashed;
    stats.churn_events += round.churn_events;
    stats.messages_purged += round.messages_purged;
  };
  accrue(totals_);
  round_messages_.record(round.messages_sent);
  round_words_.record(round.words_sent);
  round_edge_load_.record(round.max_edge_load);
  for (const std::size_t i : open_) {
    PhaseMetrics& phase = phases_[i];
    accrue(phase.stats);
    phase.round_messages.record(round.messages_sent);
    phase.round_words.record(round.words_sent);
    phase.round_edge_load.record(round.max_edge_load);
  }
}

void MetricsRegistry::record_tag_slot(int slot, std::int64_t messages,
                                      std::int64_t words) {
  tags_[slot].messages += messages;
  tags_[slot].words += words;
  for (const std::size_t i : open_) {
    phases_[i].tags[slot].messages += messages;
    phases_[i].tags[slot].words += words;
  }
}

void MetricsRegistry::record_edge(graph::VertexId from, graph::VertexId to,
                                  std::int64_t messages, std::int64_t words,
                                  int peak_load) {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(from))
                             << 32) |
                            static_cast<std::uint32_t>(to);
  EdgeLoadStats& e = edges_[key];
  e.from = from;
  e.to = to;
  e.messages += messages;
  e.words += words;
  e.peak_load = std::max(e.peak_load, peak_load);
}

void MetricsRegistry::end_run(const RunStats& run_totals,
                              std::int64_t critical_path) {
  // Logical fields were already accrued round by round; the wall-clock
  // duration only exists per run. It lives in totals_ / phase stats for
  // the run report's "wall" section but is deliberately left out of
  // write_stats_json — snapshots stay bit-identical across thread counts
  // and with profiling on or off (DESIGN.md §13/§14).
  totals_.duration_ns += run_totals.duration_ns;
  ++runs_;
  cp_total_ += critical_path;
  if (critical_path > cp_longest_) cp_longest_ = critical_path;
  for (const std::size_t i : open_) {
    ++phases_[i].runs;
    phases_[i].critical_path += critical_path;
    phases_[i].stats.duration_ns += run_totals.duration_ns;
  }
}

// --- MetricsRegistry: phases -------------------------------------------------

void MetricsRegistry::phase_begin(std::string name) {
  PhaseMetrics phase;
  phase.name = std::move(name);
  phase.depth = static_cast<int>(open_.size());
  open_.push_back(phases_.size());
  phases_.push_back(std::move(phase));
}

void MetricsRegistry::phase_end() {
  if (open_.empty()) return;  // unbalanced end: ignore, don't corrupt
  phases_[open_.back()].closed = true;
  open_.pop_back();
}

// --- MetricsRegistry: snapshots ----------------------------------------------

std::vector<EdgeLoadStats> MetricsRegistry::top_edges(int k) const {
  std::vector<EdgeLoadStats> out;
  out.reserve(edges_.size());
  for (const auto& [key, e] : edges_) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const EdgeLoadStats& a, const EdgeLoadStats& b) {
              if (a.messages != b.messages) return a.messages > b.messages;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  if (k >= 0 && static_cast<int>(out.size()) > k) out.resize(k);
  return out;
}

void MetricsRegistry::reset() {
  totals_ = RunStats{};
  runs_ = 0;
  cp_total_ = 0;
  cp_longest_ = 0;
  round_messages_.clear();
  round_words_.clear();
  round_edge_load_.clear();
  tags_.fill(TagTraffic{});
  phases_.clear();
  open_.clear();
  edges_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_histogram_json(std::ostream& os, const LogHistogram& h) {
  os << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
     << ",\"max\":" << h.max() << ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < LogHistogram::kBuckets; ++b) {
    if (h.bucket_count(b) == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '[' << LogHistogram::bucket_upper_bound(b) << ','
       << h.bucket_count(b) << ']';
  }
  os << "]}";
}

void write_stats_json(std::ostream& os, const RunStats& s) {
  os << "{\"rounds\":" << s.rounds << ",\"messages\":" << s.messages_sent
     << ",\"words\":" << s.words_sent
     << ",\"max_edge_load\":" << s.max_edge_load
     << ",\"dropped\":" << s.messages_dropped
     << ",\"duplicated\":" << s.messages_duplicated
     << ",\"delayed\":" << s.messages_delayed
     << ",\"crashed\":" << s.vertices_crashed
     << ",\"churn_events\":" << s.churn_events
     << ",\"purged\":" << s.messages_purged << '}';
}

void write_tags_json(std::ostream& os,
                     const std::array<TagTraffic, kMetricsTagSlots>& tags) {
  os << '[';
  bool first = true;
  for (int slot = 0; slot < kMetricsTagSlots; ++slot) {
    if (tags[slot].messages == 0 && tags[slot].words == 0) continue;
    if (!first) os << ',';
    first = false;
    const int tag = metrics_slot_tag(slot);
    os << "{\"id\":" << tag << ",\"name\":";
    json_escape(os, tag < 0 ? "user_overflow" : tag_name(tag));
    os << ",\"messages\":" << tags[slot].messages
       << ",\"words\":" << tags[slot].words << '}';
  }
  os << ']';
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os, int top_k_edges) const {
  os << "{\"totals\":";
  write_stats_json(os, totals_);
  os << ",\"runs\":" << runs_ << ",\"critical_path\":{\"total\":" << cp_total_
     << ",\"longest_run\":" << cp_longest_ << '}';
  os << ",\"round_histograms\":{\"messages\":";
  write_histogram_json(os, round_messages_);
  os << ",\"words\":";
  write_histogram_json(os, round_words_);
  os << ",\"max_edge_load\":";
  write_histogram_json(os, round_edge_load_);
  os << '}';
  os << ",\"tags\":";
  write_tags_json(os, tags_);
  os << ",\"phases\":[";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const PhaseMetrics& p = phases_[i];
    if (i) os << ',';
    os << "{\"name\":";
    json_escape(os, p.name);
    os << ",\"depth\":" << p.depth << ",\"closed\":"
       << (p.closed ? "true" : "false") << ",\"runs\":" << p.runs
       << ",\"critical_path\":" << p.critical_path << ",\"stats\":";
    write_stats_json(os, p.stats);
    os << ",\"round_histograms\":{\"messages\":";
    write_histogram_json(os, p.round_messages);
    os << ",\"words\":";
    write_histogram_json(os, p.round_words);
    os << ",\"max_edge_load\":";
    write_histogram_json(os, p.round_edge_load);
    os << "},\"tags\":";
    write_tags_json(os, p.tags);
    os << '}';
  }
  os << ']';
  os << ",\"top_edges\":[";
  const auto edges = top_edges(top_k_edges);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const EdgeLoadStats& e = edges[i];
    if (i) os << ',';
    os << "{\"from\":" << e.from << ",\"to\":" << e.to
       << ",\"messages\":" << e.messages << ",\"words\":" << e.words
       << ",\"peak_load\":" << e.peak_load << '}';
  }
  os << "],\"total_edges_observed\":" << edges_.size();
  os << ",\"counters\":{";
  {
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) os << ',';
      first = false;
      json_escape(os, name);
      os << ':' << c.value();
    }
  }
  os << "},\"gauges\":{";
  {
    bool first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) os << ',';
      first = false;
      json_escape(os, name);
      os << ":{\"value\":" << g.value() << ",\"max\":" << g.max() << '}';
    }
  }
  os << "},\"histograms\":{";
  {
    bool first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) os << ',';
      first = false;
      json_escape(os, name);
      os << ':';
      write_histogram_json(os, h);
    }
  }
  os << "}}";
}

std::string MetricsRegistry::to_json(int top_k_edges) const {
  std::ostringstream os;
  write_json(os, top_k_edges);
  return os.str();
}

void write_run_report(std::ostream& os, const MetricsRegistry& metrics,
                      const RunReportContext& context) {
  os << "{\"schema\":\"ecd-run-report-v1\",\"title\":";
  json_escape(os, context.title);
  os << ",\"info\":{";
  for (std::size_t i = 0; i < context.info.size(); ++i) {
    if (i) os << ',';
    json_escape(os, context.info[i].first);
    os << ':';
    json_escape(os, context.info[i].second);
  }
  // Wall-clock elapsed time lives outside the "metrics" snapshot: the
  // snapshot is the determinism witness (byte-compared across thread
  // counts), the wall section is a measurement. Phase durations count
  // simulated-run wall time accrued while the phase was open; host-side
  // work between runs is not attributed.
  os << "},\"wall\":{\"duration_ns\":" << metrics.totals().duration_ns
     << ",\"phases\":[";
  {
    const auto& phases = metrics.phases();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      if (i) os << ',';
      os << "{\"name\":";
      json_escape(os, phases[i].name);
      os << ",\"depth\":" << phases[i].depth
         << ",\"duration_ns\":" << phases[i].stats.duration_ns << '}';
    }
  }
  os << "]},\"metrics\":";
  metrics.write_json(os, context.top_k_edges);
  os << "}\n";
}

}  // namespace ecd::congest
