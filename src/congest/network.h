// Synchronous message-passing simulator for the CONGEST model.
//
// Vertices host VertexAlgorithm instances and proceed in synchronized
// rounds (§1 of the paper): every round each vertex reads the messages
// delivered on its ports, computes locally, and emits at most
// `bandwidth_tokens` messages of at most kMaxMessageWords words per
// incident edge direction. Violations throw CongestionError — the test
// suite uses this to prove the framework's algorithms really fit CONGEST.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/congest/message.h"
#include "src/graph/graph.h"

namespace ecd::congest {

class TraceSink;  // src/congest/trace.h

class CongestionError : public std::runtime_error {
 public:
  enum class Kind {
    kBandwidth,    // per-edge per-round token budget exceeded
    kMessageSize,  // a single message exceeded kMaxMessageWords
  };

  using std::runtime_error::runtime_error;
  CongestionError(Kind kind, std::int64_t round, graph::VertexId from,
                  graph::VertexId to, int used, int budget);

  Kind kind() const { return kind_; }
  std::int64_t round() const { return round_; }
  graph::VertexId from() const { return from_; }  // sender (edge tail)
  graph::VertexId to() const { return to_; }      // receiver (edge head)
  int used() const { return used_; }              // tokens or words attempted
  int budget() const { return budget_; }          // the limit that was hit

 private:
  Kind kind_ = Kind::kBandwidth;
  std::int64_t round_ = -1;
  graph::VertexId from_ = graph::kInvalidVertex;
  graph::VertexId to_ = graph::kInvalidVertex;
  int used_ = 0;
  int budget_ = 0;
};

struct NetworkOptions {
  // Messages allowed per directed edge per round.
  int bandwidth_tokens = 1;
  // Hard stop; exceeding it throws (an algorithm failed to terminate).
  std::int64_t max_rounds = 2'000'000;
  // When false, message sizes and token budgets are unbounded — the LOCAL
  // model. Used by baselines to exhibit the LOCAL–CONGEST gap.
  bool enforce_bandwidth = true;
  // Observer for round/edge/message events (src/congest/trace.h). Null by
  // default: the run loop takes no virtual calls and behaves exactly as
  // before.
  TraceSink* trace = nullptr;
};

struct RunStats {
  std::int64_t rounds = 0;
  std::int64_t messages_sent = 0;
  std::int64_t words_sent = 0;
  // Highest number of messages a single directed edge carried in one round
  // (== bandwidth_tokens unless enforcement is off).
  int max_edge_load = 0;
};

// Per-vertex view of the network. Ports are indices into the vertex's
// incident edge list, aligned with Graph::neighbors(v).
class Context {
 public:
  graph::VertexId id() const { return id_; }
  int num_ports() const { return static_cast<int>(inbox_.size()); }
  // CONGEST standard assumption: a vertex knows its neighbors' ids.
  graph::VertexId neighbor(int port) const { return neighbors_[port]; }
  std::int64_t round() const { return round_; }
  int num_network_vertices() const { return n_; }

  // Messages delivered on `port` at the start of this round.
  const std::vector<Message>& inbox(int port) const { return inbox_[port]; }

  // Queues a message on `port`; delivered next round. Throws
  // CongestionError if the per-edge budget or message size is exceeded.
  void send(int port, Message message);

 private:
  friend class Network;
  graph::VertexId id_ = graph::kInvalidVertex;
  int n_ = 0;
  std::int64_t round_ = 0;
  const NetworkOptions* options_ = nullptr;
  std::vector<graph::VertexId> neighbors_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> outbox_;
};

class VertexAlgorithm {
 public:
  virtual ~VertexAlgorithm() = default;
  // Round 0 happens before any message exchange.
  virtual void round(Context& ctx) = 0;
  // The network stops when every vertex reports finished. A finished vertex
  // keeps receiving rounds (messages may still arrive) but typically no-ops.
  virtual bool finished() const = 0;
};

class Network {
 public:
  Network(const graph::Graph& g, NetworkOptions options = {});

  // Runs `algorithms` (one per vertex) to completion. Returns round and
  // message statistics. Throws if max_rounds is exceeded.
  RunStats run(std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms);

  const graph::Graph& graph() const { return g_; }

 private:
  const graph::Graph& g_;
  NetworkOptions options_;
};

}  // namespace ecd::congest
