// Synchronous message-passing simulator for the CONGEST model.
//
// Vertices host VertexAlgorithm instances and proceed in synchronized
// rounds (§1 of the paper): every round each vertex reads the messages
// delivered on its ports, computes locally, and emits at most
// `bandwidth_tokens` messages of at most kMaxMessageWords words per
// incident edge direction. Violations throw CongestionError — the test
// suite uses this to prove the framework's algorithms really fit CONGEST.
//
// Performance contract (DESIGN.md "Simulator performance"): the steady
// state of a run allocates nothing. Topology (the directed-port CSR and the
// reverse-port map) is built once in the Network constructor and reused by
// every run on that Network; mailboxes are two preallocated slot arenas
// indexed by directed port that trade roles each round (a message is
// written once, into its receiver's slot, and never moved); and termination
// is an O(1) counter check, not a per-round scan. With
// NetworkOptions::num_threads != 1 the round loop additionally runs
// bulk-synchronous-parallel over contiguous vertex shards (DESIGN.md §11);
// results are bit-identical to the serial path for every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/congest/fault.h"
#include "src/congest/message.h"
#include "src/congest/thread_pool.h"
#include "src/graph/graph.h"

namespace ecd::congest {

class TraceSink;           // src/congest/trace.h
class MetricsRegistry;     // src/congest/metrics.h
class ExecutionProfiler;   // src/congest/profiler.h
class Network;

class CongestionError : public std::runtime_error {
 public:
  enum class Kind {
    kBandwidth,    // per-edge per-round token budget exceeded
    kMessageSize,  // a single message exceeded kMaxMessageWords
  };

  using std::runtime_error::runtime_error;
  CongestionError(Kind kind, std::int64_t round, graph::VertexId from,
                  graph::VertexId to, int used, int budget);

  Kind kind() const { return kind_; }
  std::int64_t round() const { return round_; }
  graph::VertexId from() const { return from_; }  // sender (edge tail)
  graph::VertexId to() const { return to_; }      // receiver (edge head)
  int used() const { return used_; }              // tokens or words attempted
  int budget() const { return budget_; }          // the limit that was hit

 private:
  Kind kind_ = Kind::kBandwidth;
  std::int64_t round_ = -1;
  graph::VertexId from_ = graph::kInvalidVertex;
  graph::VertexId to_ = graph::kInvalidVertex;
  int used_ = 0;
  int budget_ = 0;
};

// Sampling filters for an attached TraceSink (DESIGN.md §18). Every field
// is a pure function of (round, receiver vertex, message tag) — never of
// the thread count or delivery order — so a sampled trace is bit-identical
// at every num_threads value. The defaults keep every event, which is the
// exact stream the PR 1 fixtures were recorded against.
struct TraceConfig {
  // Emit per-event callbacks (and on_round_end) only for rounds where
  // round % round_period == 0. <= 1 keeps every round.
  std::int64_t round_period = 1;
  // Emit delivery events (on_message / on_edge_load) only for receivers
  // with id % vertex_stride == 0. <= 1 keeps every vertex. Churn purge
  // events are not strided — a purge is a rare, load-bearing event.
  int vertex_stride = 1;
  // When >= 0, on_message fires only for messages with exactly this tag.
  // on_edge_load still covers the whole port (edge loads are per-edge
  // facts, not per-tag ones).
  int tag_filter = -1;

  bool round_sampled(std::int64_t round) const {
    return round_period <= 1 || round % round_period == 0;
  }
  bool vertex_sampled(graph::VertexId v) const {
    return vertex_stride <= 1 || v % vertex_stride == 0;
  }
  bool tag_sampled(int tag) const { return tag_filter < 0 || tag == tag_filter; }
};

struct NetworkOptions {
  // Messages allowed per directed edge per round.
  int bandwidth_tokens = 1;
  // Hard stop: an algorithm that has not terminated after executing
  // max_rounds compute rounds throws (it failed to terminate).
  std::int64_t max_rounds = 2'000'000;
  // When false, message sizes and token budgets are unbounded — the LOCAL
  // model. Used by baselines to exhibit the LOCAL–CONGEST gap.
  bool enforce_bandwidth = true;
  // Observer for round/edge/message events (src/congest/trace.h). Null by
  // default: the run loop takes no virtual calls and behaves exactly as
  // before. Works at every num_threads value (DESIGN.md §18): with worker
  // threads, delivery records per-shard event lanes that replay on the
  // caller thread at the round barrier in sender-(vertex, port) order —
  // the same order the serial loop emits — so the event stream is
  // byte-identical across thread counts.
  TraceSink* trace = nullptr;
  // Sampling filters for `trace` (ignored when trace is null). The
  // defaults deliver the full event stream.
  TraceConfig trace_config;
  // Always-on aggregate metrics (src/congest/metrics.h, DESIGN.md §13).
  // Unlike `trace`, this works at every num_threads value: per-shard
  // accumulator rows reduce at the round barrier, snapshots are
  // bit-identical across thread counts, and the round path stays
  // allocation-free. Null: one predictable branch per delivered port.
  MetricsRegistry* metrics = nullptr;
  // Threads stepping vertices each round (DESIGN.md §11). 1 (the default)
  // is the serial path; 0 resolves to std::thread::hardware_concurrency()
  // clamped so a tiny graph never spawns workers it cannot feed (each
  // shard gets a minimum amount of per-round weight — idle workers only
  // add barrier latency); k > 1 shards vertices across k workers. Results
  // — RunStats and every vertex's final state — are bit-identical for
  // every value.
  int num_threads = 1;
  // Sparse fast path (DESIGN.md §15): a parallel Network executes a round
  // on the calling thread alone — no dispatch, no barriers — when at most
  // this many vertices are active (round fusion for near-empty rounds).
  // The choice is a pure function of the round's active count, which is
  // thread-count independent, so results and metrics stay bit-identical.
  // 0 disables the fallback.
  int sparse_serial_threshold = 256;
  // Deterministic fault injection (DESIGN.md §12). Disabled by default
  // (faults.enabled() == false): the run loop takes the exact fault-free
  // path. Fault schedules are a pure function of (faults.seed, round, port,
  // slot) and therefore bit-identical across num_threads values.
  FaultPlan faults;
  // Wall-clock execution profiler (src/congest/profiler.h, DESIGN.md §14):
  // when set, every round's shard phases — compute, delivery, fault pass,
  // reduction, barrier wait — are timestamped into the profiler's
  // per-shard ring buffers. Purely observational: results, metrics and
  // trace snapshots are bit-identical with or without it, and the round
  // path stays allocation-free. Works at every num_threads value.
  ExecutionProfiler* profiler = nullptr;
  // Externally owned worker pool (DESIGN.md §16). When set and its
  // num_threads() equals the Network's resolved shard count, the Network
  // dispatches rounds on it instead of spawning a private pool — so a sweep
  // over many Networks at the same thread count pays thread creation once,
  // not once per Network. A mismatched pool on a parallel Network falls
  // back to an owned pool; the fallback is counted in the `pool_fallbacks`
  // MetricsRegistry counter (when `metrics` is attached) so a sweep that
  // silently stopped sharing threads shows up in its run reports. The
  // caller must keep the pool alive for the Network's lifetime and must
  // not run two Networks on one pool concurrently (a pool serves one
  // dispatch at a time).
  ThreadPool* shared_pool = nullptr;
};

struct RunStats {
  std::int64_t rounds = 0;
  std::int64_t messages_sent = 0;
  std::int64_t words_sent = 0;
  // Highest number of messages a single directed edge carried in one round.
  // At most bandwidth_tokens when enforcement is on (a vertex may send
  // fewer tokens than its budget, so equality is not guaranteed);
  // unbounded when enforcement is off. Injected duplicates and re-delivered
  // delayed messages count toward the load of the round they reach the
  // receiver in, so a faulted run may exceed bandwidth_tokens here.
  int max_edge_load = 0;
  // Fault-injection outcomes (all zero when NetworkOptions::faults is
  // disabled). messages_sent/words_sent count what was actually delivered:
  // dropped traffic is excluded, duplicate copies are included once each.
  std::int64_t messages_dropped = 0;
  std::int64_t messages_duplicated = 0;  // extra copies delivered
  std::int64_t messages_delayed = 0;     // messages chosen for delay
  std::int64_t vertices_crashed = 0;     // crash events that fired
  // Topology-churn outcomes (all zero when FaultPlan::churn is empty).
  std::int64_t churn_events = 0;    // scheduled topology events that fired
  // Messages discarded by churn: sends attempted on a dead edge plus
  // pending (delayed or undelivered) messages on a port whose edge died.
  std::int64_t messages_purged = 0;
  // Wall-clock duration of the run (steady_clock). The only
  // non-deterministic field: everything above is bit-identical across
  // thread counts, this one is a measurement. MetricsRegistry snapshots
  // deliberately exclude it (DESIGN.md §13/§14); run reports surface it in
  // their separate "wall" section.
  std::int64_t duration_ns = 0;

  // Combines statistics the way consecutive (or per-shard partial) runs
  // combine: every count adds, max_edge_load takes the max. Used verbatim
  // by the serial round loop, the sharded barrier reduction, and
  // RoundLedger::add_measured.
  RunStats& operator+=(const RunStats& other) {
    rounds += other.rounds;
    messages_sent += other.messages_sent;
    words_sent += other.words_sent;
    if (other.max_edge_load > max_edge_load) {
      max_edge_load = other.max_edge_load;
    }
    messages_dropped += other.messages_dropped;
    messages_duplicated += other.messages_duplicated;
    messages_delayed += other.messages_delayed;
    vertices_crashed += other.vertices_crashed;
    churn_events += other.churn_events;
    messages_purged += other.messages_purged;
    duration_ns += other.duration_ns;
    return *this;
  }
};

// Read-only view of the messages delivered on one port this round. Valid
// only for the duration of the round() call that observed it: the backing
// storage is recycled when the round ends.
class PortInbox {
 public:
  PortInbox() = default;
  PortInbox(const Message* data, int size) : data_(data), size_(size) {}

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Message& operator[](int i) const { return data_[i]; }
  const Message* begin() const { return data_; }
  const Message* end() const { return data_ + size_; }

 private:
  const Message* data_ = nullptr;
  int size_ = 0;
};

// Per-vertex view of the network. Ports are indices into the vertex's
// incident edge list, aligned with Graph::neighbors(v).
class Context {
 public:
  graph::VertexId id() const { return id_; }
  int num_ports() const { return static_cast<int>(neighbors_.size()); }
  // CONGEST standard assumption: a vertex knows its neighbors' ids.
  graph::VertexId neighbor(int port) const { return neighbors_[port]; }
  std::int64_t round() const { return round_; }
  int num_network_vertices() const { return n_; }

  // Messages delivered on `port` at the start of this round, in the order
  // the neighbor sent them (per-port FIFO).
  PortInbox inbox(int port) const;

  // Whether the edge behind `port` currently carries traffic. Always true
  // on a churn-free network. Under a churn plan (FaultPlan::churn) the
  // port table covers every edge the plan can ever make live, so ports of
  // deleted or not-yet-inserted edges exist but are dead: sends on them
  // are silently discarded (counted in RunStats::messages_purged) and
  // nothing arrives on them.
  bool port_live(int port) const;

  // Queues a message on `port`; delivered next round. Throws
  // CongestionError if the per-edge budget or message size is exceeded,
  // std::out_of_range if `port` is not one of this vertex's ports.
  void send(int port, Message message);

 private:
  friend class Network;
  graph::VertexId id_ = graph::kInvalidVertex;
  int n_ = 0;
  std::int64_t round_ = 0;
  Network* net_ = nullptr;
  int base_ = 0;  // this vertex's first directed-port index (CSR offset)
  std::span<const graph::VertexId> neighbors_;
};

class VertexAlgorithm {
 public:
  virtual ~VertexAlgorithm() = default;
  // Round 0 happens before any message exchange.
  virtual void round(Context& ctx) = 0;
  // The network stops when every vertex reports finished. A finished vertex
  // keeps receiving rounds (messages may still arrive) but typically no-ops.
  //
  // Contract: finished() must be a pure function of this algorithm's own
  // state, and a vertex that reported finished and then executes a round
  // with no incoming messages must still report finished. The run loop
  // maintains its termination counter from per-round transitions and only
  // re-queries vertices that were unfinished or received mail; debug builds
  // assert the quiescence half of the contract.
  virtual bool finished() const = 0;
};

class Network {
 public:
  // Builds the directed-port topology (CSR offsets, reverse-port map) and
  // the mailbox arenas once; run() reuses them, so invoking many runs on
  // one Network — as the framework phases and the decomposition recursion
  // do on a fixed graph — pays topology setup a single time.
  Network(const graph::Graph& g, NetworkOptions options = {});

  // Runs `algorithms` (one per vertex) to completion. Returns round and
  // message statistics. Throws if max_rounds is exceeded.
  RunStats run(std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms);

  // Restores the Network to the state a fresh construction would leave it
  // in, without reconstructing anything: clears mailbox arenas and injected
  // prefixes left by a previous (possibly aborted) run, rewinds the crash
  // schedule, re-primes the round-0 worklists, and zeroes the staged
  // metrics scratch (edge/tag/critical-path accumulators). run() calls
  // this on entry, so back-to-back runs on one Network are already
  // bit-identical to runs on fresh Networks; the method is public so reuse
  // engines (src/core/sweep.h) and tests can state — and assert — the
  // no-carry-over contract explicitly. O(state actually dirtied), zero
  // allocation.
  void reset_for_run();

  // Replaces the fault-schedule seed for subsequent runs. Fault decisions
  // are a pure stateless function of (seed, round, port, slot) and the
  // seed participates in no preallocation (slot capacities, the crash
  // schedule and the churn schedule depend only on the plan's
  // probabilities and event lists), so swapping the seed between runs on
  // one Network is exactly equivalent to constructing a fresh Network with
  // the new seed. The plan is re-validated on the way through — the same
  // check construction applies — and a disabled plan (no fault schedule to
  // reseed) throws std::invalid_argument instead of silently recording a
  // seed that no run would ever consult.
  void set_fault_seed(std::uint64_t seed);

  const graph::Graph& graph() const { return g_; }

 private:
  friend class Context;

  // Clears any mailbox state left by a previous (possibly aborted) run.
  void reset_mailboxes();
  void retire_inbox_buffer();
  // Clears stale worklist/crash-cursor state and queues every vertex for
  // round 0 (round 0 precedes any message exchange, so all n vertices
  // step; from round 1 on the worklists carry only active vertices).
  void prime_worklists();
  RunStats run_serial(std::vector<std::unique_ptr<VertexAlgorithm>>& algos);
  RunStats run_parallel(std::vector<std::unique_ptr<VertexAlgorithm>>& algos);
  // True when shard s has a crash event scheduled at or before round r
  // that its compute phase has not yet retired.
  bool crash_due(int s, std::int64_t r) const {
    return crash_cursor_[s] < crash_sched_[s].size() &&
           crash_sched_[s][crash_cursor_[s]].round <= r;
  }
  // Round phase one: steps shard s's *active* vertices for round r — the
  // worklist filled by last round's compute (still unfinished) and
  // delivery (received mail) — retires due crash events, and records
  // finished() transitions in the shard's accumulator. Refills the
  // opposite parity's worklist with vertices still unfinished. Profiler
  // brackets are the caller's responsibility (the sparse fast path
  // profiles a whole fused round on lane 0 instead).
  void compute_shard(int s, std::int64_t r,
                     std::vector<std::unique_ptr<VertexAlgorithm>>& algos);
  // Round phase two (after the barrier): retires shard t's ports of the
  // buffer being vacated (this round's inboxes, next round's outboxes),
  // then applies fault decisions for round r and accounts buffer `out`
  // traffic delivered to shard t's vertices, queueing every mail receiver
  // on shard t's next-round worklist. Runs on whichever worker was
  // assigned shard t this round (the owner when t is a member, a member
  // picking up an orphan otherwise). Returns the fault-pass subtotal in
  // nanoseconds (0 unless both faults and the profiler are active).
  std::int64_t deliver_shard(int t, int out, std::int64_t r);
  // Applies every churn event scheduled at or before round r that has not
  // fired yet (caller thread, between rounds — before the member census,
  // so a joined vertex is counted and dispatched this round). Updates the
  // run's unfinished counter for node leave/join and leaves the number of
  // events fired in round_churn_events_. Touches only preallocated state.
  void apply_churn(std::int64_t r,
                   std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms,
                   int& unfinished);

  // Per-shard phase outputs, reduced on the caller thread at the round
  // barrier via RunStats::operator+=; padded so workers never share a
  // cache line. The serial loop uses one stack instance per round so the
  // fault hook below is shared verbatim between both run loops.
  // `stats.rounds` stays 0 — the reduction adds 1 round per barrier.
  struct alignas(64) ShardAccum {
    RunStats stats;
    int unfinished_delta = 0;
    // Net change in messages held back for later delivery: +1 per fresh
    // delay, -1 per delayed message that finally reached its receiver.
    std::int64_t injected_delta = 0;
    // Sends attempted on a dead port this round (churn only). Staged
    // separately from stats.messages_purged because the compute phase
    // writes it while deliver_shard resets the stats block; the barrier
    // reduction folds it in.
    std::int64_t churn_sends_dropped = 0;
    // Traced parallel runs stash the shard's first congestion violation
    // here instead of calling the sink from a worker; run_parallel emits
    // the lowest armed shard's record before rethrowing — the same
    // violation the serial loop would have reported, because run_phases
    // rethrows the lowest-shard exception.
    bool violation_armed = false;
    CongestionError::Kind violation_kind = CongestionError::Kind::kBandwidth;
    std::int64_t violation_round = 0;
    graph::VertexId violation_from = graph::kInvalidVertex;
    graph::VertexId violation_to = graph::kInvalidVertex;
    int violation_used = 0;
    int violation_budget = 0;
  };

  // Delivery-phase fault hook (DESIGN.md §12): applies options_.faults to
  // receiver port rs of buffer `out` for round r — compacting surviving
  // slots in place, appending duplicate copies, and moving delayed
  // messages into the opposite buffer (next round's outbox) — then leaves
  // the port's final delivered count in the mailbox bookkeeping. Runs on
  // whichever worker owns the receiving shard; every decision is keyed by
  // (seed, round, port, slot), so the outcome is thread-count independent.
  void apply_port_faults(int rs, int out, std::int64_t r, ShardAccum& acc);
  // Moves a delayed message into buffer `buf`'s port rs behind any other
  // injected messages, with `stage` remaining re-delivery passes.
  void inject_delayed(int buf, int rs, Message&& m, signed char stage);

  const graph::Graph& g_;
  NetworkOptions options_;
  int n_ = 0;
  int num_dir_ports_ = 0;  // 2m: one slot group per directed edge

  // Cached topology. Directed port gp = port_base_[v] + p identifies
  // (vertex v, local port p); reverse_slot_[gp] is the directed port of the
  // same edge seen from the other endpoint — where messages sent on gp are
  // delivered. port_peer_[gp] is the neighbor on that port.
  std::vector<int> port_base_;         // size n+1 (CSR offsets)
  std::vector<int> reverse_slot_;      // size 2m
  std::vector<graph::VertexId> port_owner_;  // size 2m: vertex owning gp
  std::vector<graph::VertexId> port_peer_;   // size 2m: neighbor on gp
  std::vector<Context> contexts_;      // wired once, reused across runs

  // Double-buffered mailboxes: buffer in_ is this round's inbox, 1 - in_
  // collects sends for the next round; ending a round swaps the roles.
  // With bandwidth enforcement on, messages live in a contiguous slot
  // arena (slot_cap_ slots per directed port — sends beyond that throw
  // before touching memory). The LOCAL model (enforcement off) has no slot
  // bound, so it falls back to per-port vectors; so does an enforced
  // network whose arena would be unreasonably large.
  bool arena_mode_ = true;
  int slot_cap_ = 1;
  std::vector<Message> slab_[2];                // arena: 2m * slot_cap_
  std::vector<int> counts_[2];                  // arena: messages per port
  std::vector<std::vector<Message>> boxes_[2];  // fallback: per-port boxes

  // Parallel execution (DESIGN.md §11). Vertices are statically sharded
  // into num_shards_ contiguous, degree-weighted ranges (shard_begin_ is a
  // CSR of size num_shards_ + 1); num_shards_ == 1 is the serial path.
  // send_bucket_[gp] is the precomputed active-bucket index for a deposit
  // made on gp: sender_shard(gp) * num_shards_ + receiver_shard(gp).
  int num_shards_ = 1;
  std::vector<graph::VertexId> shard_begin_;
  std::vector<std::int32_t> send_bucket_;
  std::unique_ptr<ThreadPool> pool_;  // owned pool; null when serial or shared
  // The pool rounds actually dispatch on: options_.shared_pool when it
  // matches num_shards_, otherwise pool_.get(). Null when num_shards_ == 1.
  ThreadPool* pool_ptr_ = nullptr;

  // Directed ports holding at least one message in each buffer — bounds
  // per-round cleanup and stats to the traffic that actually happened.
  // num_shards_^2 buckets per buffer: bucket s*num_shards_+t holds the
  // receiver ports that sender shard s filled on receiver shard t, so the
  // compute phase appends single-writer (only worker s touches row s) and
  // the delivery phase reads single-reader (only worker t scans column t).
  // Each bucket is reserved to its exact port-count ceiling up front, so
  // steady-state appends never allocate.
  std::vector<std::vector<int>> active_[2];

  std::vector<ShardAccum> shard_accum_;

  // Sparse fast path (DESIGN.md §15). Per buffer parity and shard, the
  // vertices that must step in the round reading that buffer: a vertex is
  // stepped in round r iff it was unfinished after round r-1 or has mail
  // delivered for round r (plus all n vertices in round 0). Compute of
  // round r consumes worklist_[in_] and appends still-unfinished vertices
  // to worklist_[out]; delivery appends mail receivers — both writers own
  // the list exclusively in their phase. queued_[b][v] dedups appends;
  // each entry is cleared when its vertex is consumed. Lists are reserved
  // to the shard's vertex count, so steady-state appends never allocate.
  std::vector<std::vector<graph::VertexId>> worklist_[2];
  std::vector<char> queued_[2];
  // Per-round membership scratch (caller-written before each dispatch):
  // member_[s] != 0 when shard s has compute work this round; non-member
  // shards are never woken (their doorbells stay untouched) and their
  // delivery work — a shard can receive fresh mail without having had
  // compute work — is picked up round-robin by the members via orphans_.
  std::vector<unsigned char> member_;
  std::vector<std::int32_t> member_rank_;  // rank among members, -1 if not
  std::vector<std::int32_t> orphans_;      // non-member shards this round
  int round_member_count_ = 0;

  // Crash-stop schedule, per shard: (round, vertex) sorted by round (one
  // event per crashed vertex — the earliest plan entry wins, matching
  // crash_round_). The compute phase retires due events so a crash fires
  // even when its vertex is idle-finished; crash_cursor_[s] is advanced by
  // shard s's compute alone.
  struct CrashSched {
    std::int64_t round = 0;
    graph::VertexId vertex = graph::kInvalidVertex;
  };
  std::vector<std::vector<CrashSched>> crash_sched_;
  std::vector<std::size_t> crash_cursor_;

  // Topology churn (DESIGN.md §17). All empty/false when
  // options_.faults.has_churn() is false — the hot paths check the cached
  // flag first. With churn, the port CSR above is built over the *union*
  // graph (every initial edge plus every edge a kEdgeInsert can make
  // live): capacity for the plan's maximum degree growth is preallocated
  // here, initial edges keep their g.neighbors(v)-aligned local ports, and
  // insert-only edges take the ports after them — so port numbering is
  // stable for surviving edges across any event sequence.
  bool churn_active_ = false;
  // Union-graph adjacency backing the contexts (the Graph's own CSR no
  // longer matches the port table when inserts exist).
  std::vector<graph::VertexId> churn_adj_;
  // Per-directed-port liveness; port_on_init_ is the pre-run state
  // (initial edges on, insert-only edges off) that reset_for_run restores.
  std::vector<char> port_on_;
  std::vector<char> port_on_init_;
  // Per-vertex presence (node leave/join); compute skips absent vertices
  // exactly like crashed ones.
  std::vector<char> present_;
  // The plan's events, endpoints pre-resolved to directed ports, sorted by
  // round (stable — plan order breaks ties). churn_cursor_ is advanced by
  // apply_churn on the caller thread alone.
  struct ChurnSched {
    std::int64_t round = 0;
    ChurnKind kind = ChurnKind::kEdgeDelete;
    graph::VertexId u = graph::kInvalidVertex;  // node events
    int gp = -1;  // edge events: the two directed ports
    int rs = -1;
  };
  std::vector<ChurnSched> churn_sched_;
  std::size_t churn_cursor_ = 0;
  // Events fired by this round's apply_churn (caller-written, folded into
  // the round stats at the barrier reduction).
  std::int64_t round_churn_events_ = 0;

  // Fault injection (DESIGN.md §12). All empty/false when
  // options_.faults.enabled() is false — the hot paths below check the
  // cached flag before touching any of it.
  bool faults_active_ = false;
  // Per vertex: first round it no longer executes (int64 max = never).
  std::vector<std::int64_t> crash_round_;
  // The first injected_[b][gp] slots of port gp in buffer b hold delayed
  // messages placed there by the fault hook; fresh sends append after them
  // and the bandwidth budget applies to the fresh suffix only.
  std::vector<int> injected_[2];
  // Remaining re-delivery passes of each injected slot. Arena mode keeps a
  // slab parallel to slab_ (entry rs * slot_cap_ + i); fallback mode keeps
  // one vector per port whose length is exactly the injected prefix.
  std::vector<signed char> stage_slab_[2];
  std::vector<std::vector<signed char>> stage_boxes_[2];
  // Delayed messages currently in transit. The run loop keeps executing
  // rounds while this is nonzero so a delayed message cannot be silently
  // discarded by every vertex reporting finished before it lands.
  std::int64_t pending_injected_ = 0;

  // Always-on metrics (DESIGN.md §13). All empty when options_.metrics is
  // null; the hot paths check the cached pointer before touching any of
  // it. Edge rows are single-writer during delivery (one receiver shard
  // per port); tag rows are one cache-line-padded stride per shard; the
  // critical-path staging arrays are written only for vertices of the
  // owning shard and applied on the caller thread at the barrier, in
  // shard order, so the result is thread-count independent.
  MetricsRegistry* metrics_ = nullptr;
  // Wall-clock profiler (DESIGN.md §14); null when options_.profiler is.
  // The round loops bracket each phase with its hooks — every branch on it
  // is a cached-pointer check, like metrics_.
  ExecutionProfiler* profiler_ = nullptr;
  // Resets the per-run accumulators and opens a registry run.
  void metrics_begin_run();
  // Accounts one delivered port (shard `shard` owns the receiver) in one
  // pass over the messages: per-tag counts, per-edge totals/peak, and the
  // receiver's staged causal depth. Returns the port's delivered words so
  // the delivery loop does not walk the messages a second time.
  std::int64_t metrics_account_port(int shard, int rs, const Message* msgs,
                                    int cnt, std::int64_t r);
  // Applies the round's staged critical-path bumps (caller thread, at the
  // barrier, shards in order).
  void metrics_apply_round();
  // Reduces tag rows and edge accumulators into the registry and closes
  // the run. Not reached when the run aborts (CongestionError /
  // max_rounds) — metrics_begin_run clears stale partials instead.
  void metrics_end_run(const RunStats& stats);
  // Per receiving port, this run. One 24-byte row per port keeps the three
  // accumulators on the same cache line (they are always touched together
  // in the delivery loop).
  struct EdgeAccum {
    std::int64_t messages = 0;
    std::int64_t words = 0;
    std::int64_t peak = 0;  // max messages in a single round
  };
  std::vector<EdgeAccum> edge_accum_;
  std::vector<std::int64_t> tag_msgs_;    // num_shards_ x kMetricsTagSlots
  std::vector<std::int64_t> tag_words_;
  // Causal message depth per vertex (length of the longest message chain
  // ending at the vertex), updated once per round from the staged pending
  // values; stamp marks the round a staged depth belongs to. Depths are
  // 32-bit on purpose: a depth is bounded by the executed round count, no
  // feasible run reaches 2^31 rounds, and halving the array keeps the
  // random per-sender reads in cache on large graphs (the dominant metrics
  // cost there — see EXPERIMENTS.md E15).
  std::vector<std::int32_t> cp_depth_;
  struct CpStage {
    std::int64_t stamp = -1;
    std::int32_t depth = 0;
  };
  std::vector<CpStage> cp_stage_;
  std::vector<std::vector<graph::VertexId>> cp_touched_;  // per shard
  std::int64_t cp_run_max_ = 0;

  // Traced delivery replays ports in sender order; entries pack
  // (sender port << 32) | receiver port so the per-round sort is a plain
  // integer sort with no comparator indirection. Reserved up front (only
  // when a trace is attached).
  std::vector<std::uint64_t> trace_order_;
  // Sharded trace lanes (DESIGN.md §18): lane t collects the packed keys
  // of ports delivered to shard t this round — written by whichever worker
  // delivered shard t (exactly one per round, orphans included), so every
  // lane is single-writer. trace_replay_round drains the lanes into
  // trace_order_ at the barrier, sorts, and replays events on the caller.
  // Each lane is reserved to shard t's receiver-port count, so steady-state
  // appends never allocate.
  std::vector<std::vector<std::uint64_t>> trace_lane_;
  // Per-port purge counts staged for replay (trace + churn only): a lane
  // entry whose port is dead at replay time was a purge, and this array
  // carries how many messages it removed. Reset to 0 as each entry is
  // consumed.
  std::vector<int> trace_purged_;
  // Round-sampling check for the attached sink (false without one).
  bool trace_round_sampled(std::int64_t r) const {
    return options_.trace_config.round_sampled(r);
  }
  // Drains the lanes in shard order, sorts into sender-(vertex, port)
  // order, and replays the round's delivery events (on_message /
  // on_edge_load / on_churn_purge) on the caller thread at the barrier.
  // Reads the post-fault contents of buffer `out`, which stay intact until
  // that buffer is retired during the *next* round's delivery. Zero
  // allocation: lanes and trace_order_ are reserved at construction.
  void trace_replay_round(std::int64_t r, int out);
  // Routes a congestion violation to the sink: direct call when serial,
  // first-per-shard stash when parallel (workers must not call the sink).
  void trace_violation(const CongestionError& err, int shard);

  // Per-vertex flag: buffer b delivers at least one message to the vertex.
  std::vector<char> mail_[2];
  int in_ = 0;

  // Per-vertex cache of finished() plus the count of unfinished vertices,
  // maintained from transitions so the stop check is O(1).
  std::vector<char> finished_;
};

}  // namespace ecd::congest
