#include "src/congest/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ecd::congest {

int ThreadPool::resolve(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)), errors_(num_threads_) {
  workers_.reserve(num_threads_ - 1);
  for (int shard = 1; shard < num_threads_; ++shard) {
    workers_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_shard(int shard) {
  try {
    job_(job_ctx_, shard);
  } catch (...) {
    errors_[shard] = std::current_exception();
  }
}

void ThreadPool::worker_loop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_shard(shard);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::dispatch(void (*fn)(void*, int), void* ctx) {
  if (num_threads_ == 1) {
    // No workers to coordinate with — and no barrier to quiesce at, so an
    // exception propagates directly.
    fn(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = fn;
    job_ctx_ = ctx;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  {
    // Once the generation is published, this dispatch must quiesce at the
    // barrier before control can leave — even if the caller's slice of the
    // job (or anything else on this path) exits via exception. Returning
    // early would let the next dispatch overwrite pending_ while workers
    // of the stale generation still decrement it; the count goes negative,
    // the `pending_ == 0` predicate can never hold again, and every thread
    // ends up parked at the generation barrier. The scope guard makes the
    // wait unconditional: it runs on normal return and on unwind alike.
    struct Quiesce {
      ThreadPool* pool;
      ~Quiesce() {
        std::unique_lock<std::mutex> lock(pool->mu_);
        pool->done_cv_.wait(lock, [&] { return pool->pending_ == 0; });
      }
    } quiesce{this};
    run_shard(0);
  }
  // Quiesced: every shard has returned. Rethrow the lowest-numbered
  // capture — shards are contiguous vertex ranges, so this is the same
  // exception the serial loop would have hit first (vertex order).
  for (std::exception_ptr& e : errors_) {
    if (e) {
      std::exception_ptr first = std::move(e);
      for (std::exception_ptr& rest : errors_) rest = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace ecd::congest
