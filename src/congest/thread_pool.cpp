#include "src/congest/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ecd::congest {

namespace {

// Pre-park spin budget when the team fits the machine. Each iteration is a
// pause/yield hint plus an acquire load, so the budget is a few
// microseconds — longer than a round's barrier crossing on the fast path,
// far shorter than a futex sleep/wake cycle.
constexpr int kSpinIterations = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

void FlatBarrier::arrive_and_wait(int members, int spin) {
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == members) {
    // Last arrival: reset the count for the next episode, then release the
    // epoch. Stragglers of THIS episode never touch arrived_ again, so an
    // early arrival of the next episode incrementing it is fine.
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.store(e + 1, std::memory_order_seq_cst);
    // seq_cst pairing with the waiter's parked_ increment: if a waiter read
    // the old epoch (and therefore commits to sleep), its parked_ increment
    // precedes that read in the single total order, which precedes this
    // epoch store, which precedes the load below — so we observe parked_>0
    // and notify. The empty lock ensures the notify cannot slot between a
    // parked waiter's predicate check and its wait.
    if (parked_.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lock(mu_); }
      cv_.notify_all();
    }
    return;
  }
  for (int i = 0; i < spin; ++i) {
    if (epoch_.load(std::memory_order_acquire) != e) return;
    cpu_relax();
  }
  if (epoch_.load(std::memory_order_acquire) != e) return;
  std::unique_lock<std::mutex> lock(mu_);
  parked_.fetch_add(1, std::memory_order_seq_cst);
  cv_.wait(lock, [&] {
    return epoch_.load(std::memory_order_seq_cst) != e;
  });
  parked_.fetch_sub(1, std::memory_order_relaxed);
}

int ThreadPool::resolve(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)),
      waiters_(num_threads_),
      errors_(num_threads_) {
  const unsigned hw = std::thread::hardware_concurrency();
  spin_limit_ =
      (hw != 0 && static_cast<unsigned>(num_threads_) > hw) ? 0
                                                            : kSpinIterations;
  workers_.reserve(num_threads_ - 1);
  for (int shard = 1; shard < num_threads_; ++shard) {
    workers_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

ThreadPool::~ThreadPool() {
  // Every dispatch quiesces before returning, so all workers are at their
  // doorbells here; one generation bump per doorbell sends them home.
  stop_.store(true, std::memory_order_release);
  ++generation_;
  for (int shard = 1; shard < num_threads_; ++shard) ring(shard);
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_shard(int shard, int phase) {
  try {
    job_(job_ctx_, shard, phase);
  } catch (...) {
    errors_[shard] = std::current_exception();
    error_count_.fetch_add(1, std::memory_order_acq_rel);
    if (phase == 0) phase0_errors_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::ring(int shard) {
  Waiter& w = waiters_[shard];
  w.doorbell.store(generation_, std::memory_order_seq_cst);
  // Same seq_cst handshake as FlatBarrier: a worker that read the stale
  // doorbell and commits to park has already published parked=true in the
  // total order, so we cannot both miss each other.
  if (w.parked.load(std::memory_order_seq_cst)) {
    { std::lock_guard<std::mutex> lock(w.mu); }
    w.cv.notify_one();
  }
}

void ThreadPool::worker_loop(int shard) {
  Waiter& self = waiters_[shard];
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t g = self.doorbell.load(std::memory_order_acquire);
    if (g == seen) {
      for (int i = 0; i < spin_limit_; ++i) {
        g = self.doorbell.load(std::memory_order_acquire);
        if (g != seen) break;
        cpu_relax();
      }
      if (g == seen) {
        std::unique_lock<std::mutex> lock(self.mu);
        self.parked.store(true, std::memory_order_seq_cst);
        self.cv.wait(lock, [&] {
          return self.doorbell.load(std::memory_order_seq_cst) != seen;
        });
        self.parked.store(false, std::memory_order_relaxed);
        g = self.doorbell.load(std::memory_order_acquire);
      }
    }
    seen = g;
    if (stop_.load(std::memory_order_acquire)) return;
    run_shard(shard, 0);
    if (job_phases_ == 2) {
      barrier_.arrive_and_wait(round_members_, spin_limit_);
      // The internal barrier's epoch release makes every member's
      // phase0_errors_ bump visible — and only phase-0 bumps exist before
      // the barrier — so this check is uniform across the team: phase 1 is
      // skipped team-wide when any phase-0 slice threw, and never skipped
      // because a fast sibling already threw in phase 1.
      if (phase0_errors_.load(std::memory_order_acquire) == 0) {
        run_shard(shard, 1);
      }
    }
    barrier_.arrive_and_wait(round_members_, spin_limit_);
  }
}

void ThreadPool::dispatch(void (*fn)(void*, int, int), void* ctx, int phases,
                          const unsigned char* members) {
  if (num_threads_ == 1) {
    // No workers to coordinate with — and no barrier to quiesce at, so an
    // exception propagates directly; a phase-0 throw skips phase 1 exactly
    // as the team-wide error check would.
    fn(ctx, 0, 0);
    if (phases == 2) fn(ctx, 0, 1);
    return;
  }
  job_ = fn;
  job_ctx_ = ctx;
  job_phases_ = phases;
  int count = num_threads_;
  if (members) {
    count = 1;  // shard 0 (the caller) always participates
    for (int s = 1; s < num_threads_; ++s) count += members[s] ? 1 : 0;
  }
  round_members_ = count;
  error_count_.store(0, std::memory_order_relaxed);
  phase0_errors_.store(0, std::memory_order_relaxed);
  ++generation_;
  for (int s = 1; s < num_threads_; ++s) {
    if (!members || members[s]) ring(s);
  }
  run_shard(0, 0);
  if (phases == 2) {
    barrier_.arrive_and_wait(round_members_, spin_limit_);
    if (phase0_errors_.load(std::memory_order_acquire) == 0) {
      run_shard(0, 1);
    }
  }
  // Quiescing is structural: this arrival is on every path out of the
  // dispatch (run_shard never throws — it captures), so no exception can
  // leave workers mid-protocol and the pool is immediately reusable.
  barrier_.arrive_and_wait(round_members_, spin_limit_);
  if (error_count_.load(std::memory_order_acquire) != 0) {
    // Rethrow the lowest-numbered capture — shards are contiguous vertex
    // ranges, so this is the same exception the serial loop would have hit
    // first (vertex order).
    for (std::exception_ptr& e : errors_) {
      if (e) {
        std::exception_ptr first = std::move(e);
        for (std::exception_ptr& rest : errors_) rest = nullptr;
        std::rethrow_exception(first);
      }
    }
  }
}

}  // namespace ecd::congest
