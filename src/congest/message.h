// Messages in the CONGEST model.
//
// The model allows O(log n) bits per edge per round. We quantize: a Message
// is at most kMaxMessageWords machine words (a "word" stands for an O(log n)
// bit field such as a vertex id, an edge id, or a small counter), and the
// network enforces a per-round, per-direction token budget on every edge.
//
// Storage is allocation-free on the CONGEST hot path: a WordBuffer keeps up
// to kMaxMessageWords words inline in a std::array and only spills to the
// heap beyond that. Spilling is legal — the LOCAL-model baselines
// (enforce_bandwidth == false) deliberately send unbounded messages to
// exhibit the LOCAL–CONGEST gap, and oversized messages must exist long
// enough for the bandwidth-enforcing path to reject them with
// CongestionError::Kind::kMessageSize.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace ecd::congest {

// Four payload fields plus one routing header (token id) — still O(log n)
// bits total.
inline constexpr int kMaxMessageWords = 5;

// Well-known message tags used by the primitives layer for traffic
// attribution in the trace layer (src/congest/trace.h). Tags are metadata
// of the simulation, not payload: they do not count against the word
// budget (a real implementation would infer them from the protocol state).
// Algorithms may use their own values at kTagUserBase and above.
enum MsgTag : int {
  kTagDefault = 0,
  kTagElection = 1,
  kTagBfs = 2,
  kTagOrientation = 3,
  kTagWalkToken = 4,
  kTagBroadcast = 5,
  kTagConvergecast = 6,
  kTagDiameter = 7,
  kTagTreeToken = 8,
  kTagWalkAck = 9,
  kTagUserBase = 64,
};

const char* tag_name(int tag);

// Small-buffer word storage with (most of) the std::vector<int64_t>
// interface the algorithm layer was written against. Words live inline
// while size() <= kMaxMessageWords; the first push beyond that moves the
// whole contents into the heap spill (and clear() moves back, retaining
// spill capacity so a reused buffer never reallocates).
class WordBuffer {
 public:
  WordBuffer() = default;
  WordBuffer(std::initializer_list<std::int64_t> init) {
    assign(init.begin(), init.end());
  }
  // Implicit on purpose: lets `m.words = payload_vector` and
  // `Message{payload_vector, tag}` call sites migrate mechanically.
  WordBuffer(const std::vector<std::int64_t>& words) {
    assign(words.begin(), words.end());
  }

  WordBuffer(const WordBuffer&) = default;
  WordBuffer& operator=(const WordBuffer&) = default;
  // Moves reset the source to empty: the default would leave a spilled
  // source claiming a size its (moved-out) spill no longer backs.
  WordBuffer(WordBuffer&& other) noexcept
      : inline_(other.inline_),
        size_(other.size_),
        spill_(std::move(other.spill_)) {
    other.size_ = 0;
  }
  WordBuffer& operator=(WordBuffer&& other) noexcept {
    inline_ = other.inline_;
    size_ = other.size_;
    spill_ = std::move(other.spill_);
    other.size_ = 0;
    return *this;
  }

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::int64_t* data() const {
    return spilled() ? spill_.data() : inline_.data();
  }
  std::int64_t* data() { return spilled() ? spill_.data() : inline_.data(); }
  const std::int64_t* begin() const { return data(); }
  const std::int64_t* end() const { return data() + size_; }
  std::int64_t* begin() { return data(); }
  std::int64_t* end() { return data() + size_; }

  const std::int64_t& operator[](int i) const {
    assert(i >= 0 && i < size_);
    return data()[i];
  }
  std::int64_t& operator[](int i) {
    assert(i >= 0 && i < size_);
    return data()[i];
  }

  void clear() {
    size_ = 0;
    spill_.clear();  // keeps capacity: no realloc when this buffer respills
  }

  // Pre-sizes the spill when the final size is known to exceed the inline
  // capacity; a no-op otherwise (inline storage needs no reservation).
  void reserve(std::size_t capacity) {
    if (capacity > static_cast<std::size_t>(kMaxMessageWords)) {
      spill_.reserve(capacity);
    }
  }

  void push_back(std::int64_t word) {
    if (size_ < kMaxMessageWords) {
      inline_[size_++] = word;
      return;
    }
    if (size_ == kMaxMessageWords && spill_.empty()) {
      spill_.assign(inline_.begin(), inline_.end());
    }
    spill_.push_back(word);
    ++size_;
  }

  template <typename It,
            typename = std::enable_if_t<!std::is_integral_v<It>>>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }
  void assign(std::size_t count, std::int64_t value) {
    clear();
    reserve(count);
    for (std::size_t i = 0; i < count; ++i) push_back(value);
  }

  // Append-only insert (pos must be end()): the one shape the call sites
  // use; a general splice has no place on the message hot path.
  template <typename It>
  void insert(const std::int64_t* pos, It first, It last) {
    assert(pos == static_cast<const std::int64_t*>(end()));
    (void)pos;
    for (; first != last; ++first) push_back(*first);
  }

  WordBuffer& operator=(const std::vector<std::int64_t>& words) {
    assign(words.begin(), words.end());
    return *this;
  }

  std::vector<std::int64_t> to_vector() const { return {begin(), end()}; }

  friend bool operator==(const WordBuffer& a, const WordBuffer& b) {
    if (a.size_ != b.size_) return false;
    for (int i = 0; i < a.size_; ++i) {
      if (a.data()[i] != b.data()[i]) return false;
    }
    return true;
  }

 private:
  bool spilled() const { return size_ > kMaxMessageWords; }

  std::array<std::int64_t, kMaxMessageWords> inline_;
  std::int32_t size_ = 0;
  std::vector<std::int64_t> spill_;
};

struct Message {
  WordBuffer words;
  int tag = kTagDefault;

  int size_words() const { return words.size(); }
};

// The parallel round loop (network.cpp) moves Messages into arena slots
// from worker threads; a throwing move would unwind across the shard
// barrier. WordBuffer's hand-written moves are noexcept, and this pins
// the composite.
static_assert(std::is_nothrow_move_constructible_v<Message> &&
              std::is_nothrow_move_assignable_v<Message>);

}  // namespace ecd::congest
