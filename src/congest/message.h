// Messages in the CONGEST model.
//
// The model allows O(log n) bits per edge per round. We quantize: a Message
// is at most kMaxMessageWords machine words (a "word" stands for an O(log n)
// bit field such as a vertex id, an edge id, or a small counter), and the
// network enforces a per-round, per-direction token budget on every edge.
#pragma once

#include <cstdint>
#include <vector>

namespace ecd::congest {

// Four payload fields plus one routing header (token id) — still O(log n)
// bits total.
inline constexpr int kMaxMessageWords = 5;

struct Message {
  std::vector<std::int64_t> words;

  int size_words() const { return static_cast<int>(words.size()); }
};

}  // namespace ecd::congest
