// Messages in the CONGEST model.
//
// The model allows O(log n) bits per edge per round. We quantize: a Message
// is at most kMaxMessageWords machine words (a "word" stands for an O(log n)
// bit field such as a vertex id, an edge id, or a small counter), and the
// network enforces a per-round, per-direction token budget on every edge.
#pragma once

#include <cstdint>
#include <vector>

namespace ecd::congest {

// Four payload fields plus one routing header (token id) — still O(log n)
// bits total.
inline constexpr int kMaxMessageWords = 5;

// Well-known message tags used by the primitives layer for traffic
// attribution in the trace layer (src/congest/trace.h). Tags are metadata
// of the simulation, not payload: they do not count against the word
// budget (a real implementation would infer them from the protocol state).
// Algorithms may use their own values at kTagUserBase and above.
enum MsgTag : int {
  kTagDefault = 0,
  kTagElection = 1,
  kTagBfs = 2,
  kTagOrientation = 3,
  kTagWalkToken = 4,
  kTagBroadcast = 5,
  kTagConvergecast = 6,
  kTagDiameter = 7,
  kTagTreeToken = 8,
  kTagUserBase = 64,
};

const char* tag_name(int tag);

struct Message {
  std::vector<std::int64_t> words;
  int tag = kTagDefault;

  int size_words() const { return static_cast<int>(words.size()); }
};

}  // namespace ecd::congest
