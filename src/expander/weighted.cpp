#include "src/expander/weighted.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <random>
#include <stdexcept>

#include "src/graph/subgraph.h"

namespace ecd::expander {

using graph::Graph;
using graph::VertexId;
using graph::Weight;

namespace {

std::vector<double> weighted_degrees(const Graph& g) {
  std::vector<double> wd(g.num_vertices(), 0.0);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    wd[ed.u] += static_cast<double>(g.weight(e));
    wd[ed.v] += static_cast<double>(g.weight(e));
  }
  return wd;
}

}  // namespace

double weighted_cut_conductance(const Graph& g, const std::vector<bool>& in_s) {
  const auto wd = weighted_degrees(g);
  double vol_s = 0.0, vol_total = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vol_total += wd[v];
    if (in_s[v]) vol_s += wd[v];
  }
  const double vol_rest = vol_total - vol_s;
  if (vol_s <= 0.0 || vol_rest <= 0.0) return 0.0;
  double cut = 0.0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    if (in_s[ed.u] != in_s[ed.v]) cut += static_cast<double>(g.weight(e));
  }
  return cut / std::min(vol_s, vol_rest);
}

std::vector<double> weighted_fiedler_embedding(const Graph& g, int iterations,
                                               std::uint64_t seed) {
  const int n = g.num_vertices();
  const auto wd = weighted_degrees(g);
  std::vector<double> sqrt_wd(n);
  double phi1_norm_sq = 0.0;
  for (int v = 0; v < n; ++v) {
    sqrt_wd[v] = std::sqrt(wd[v]);
    phi1_norm_sq += wd[v];
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> x(n), y(n);
  for (auto& xi : x) xi = unit(rng);

  auto deflate = [&](std::vector<double>& v) {
    if (phi1_norm_sq <= 0) return;
    double dot = 0.0;
    for (int i = 0; i < n; ++i) dot += v[i] * sqrt_wd[i];
    dot /= phi1_norm_sq;
    for (int i = 0; i < n; ++i) v[i] -= dot * sqrt_wd[i];
  };
  auto normalize = [&](std::vector<double>& v) {
    double norm = 0.0;
    for (double vi : v) norm += vi * vi;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return false;
    for (double& vi : v) vi /= norm;
    return true;
  };
  deflate(x);
  normalize(x);
  for (int it = 0; it < iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge ed = g.edge(e);
      const double w = static_cast<double>(g.weight(e));
      if (sqrt_wd[ed.u] > 0 && sqrt_wd[ed.v] > 0) {
        y[ed.u] += w * x[ed.v] / (sqrt_wd[ed.u] * sqrt_wd[ed.v]);
        y[ed.v] += w * x[ed.u] / (sqrt_wd[ed.u] * sqrt_wd[ed.v]);
      }
    }
    for (int v = 0; v < n; ++v) y[v] = 0.5 * (x[v] + y[v]);
    deflate(y);
    if (!normalize(y)) break;
    x.swap(y);
  }
  std::vector<double> out(n, 0.0);
  for (int v = 0; v < n; ++v) {
    out[v] = sqrt_wd[v] > 0 ? x[v] / sqrt_wd[v] : 0.0;
  }
  return out;
}

namespace {

// Weighted sweep cut over the embedding.
struct WeightedSweep {
  std::vector<bool> in_s;
  double conductance = 0.0;
  bool valid = false;
};

WeightedSweep weighted_sweep_cut(const Graph& g,
                                 const std::vector<double>& score) {
  const int n = g.num_vertices();
  WeightedSweep result;
  if (n < 2 || g.num_edges() == 0) return result;
  const auto wd = weighted_degrees(g);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&score](VertexId a, VertexId b) {
    return score[a] < score[b];
  });
  std::vector<bool> inside(n, false);
  double vol_total = 0.0;
  for (double w : wd) vol_total += w;
  double vol_s = 0.0, cut = 0.0, best = 1e18;
  int best_k = -1;
  for (int k = 0; k + 1 < n; ++k) {
    const VertexId v = order[k];
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = static_cast<double>(g.weight(eids[i]));
      cut += inside[nbrs[i]] ? -w : w;
    }
    inside[v] = true;
    vol_s += wd[v];
    const double small = std::min(vol_s, vol_total - vol_s);
    if (small <= 0) continue;
    const double phi = cut / small;
    if (phi < best) {
      best = phi;
      best_k = k + 1;
    }
  }
  if (best_k < 0) return result;
  result.in_s.assign(n, false);
  for (int i = 0; i < best_k; ++i) result.in_s[order[i]] = true;
  result.conductance = best;
  result.valid = true;
  return result;
}

std::vector<std::vector<VertexId>> components_within(
    const Graph& g, const std::vector<VertexId>& vertices) {
  std::vector<char> in_set(g.num_vertices(), 0);
  for (VertexId v : vertices) in_set[v] = 1;
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<std::vector<VertexId>> components;
  for (VertexId s : vertices) {
    if (seen[s]) continue;
    components.emplace_back();
    auto& comp = components.back();
    std::queue<VertexId> q;
    seen[s] = 1;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      comp.push_back(v);
      for (VertexId u : g.neighbors(v)) {
        if (in_set[u] && !seen[u]) {
          seen[u] = 1;
          q.push(u);
        }
      }
    }
  }
  return components;
}

}  // namespace

WeightedDecomposition expander_decompose_weighted(
    const Graph& g, double eps, const DecompositionOptions& options) {
  if (eps <= 0.0 || eps >= 1.0) throw std::invalid_argument("eps out of (0,1)");
  const std::int64_t total_weight = g.total_weight();
  double phi = options.phi;
  if (phi <= 0.0) {
    const double logm =
        std::max(1.0, std::log2(static_cast<double>(std::max(2, g.num_edges()))));
    phi = eps / (8.0 * logm);
  }

  for (int attempt = 0; attempt <= options.max_retries; ++attempt, phi /= 2.0) {
    WeightedDecomposition result;
    auto& d = result.base;
    d.cluster_of.assign(g.num_vertices(), -1);
    d.num_clusters = 0;
    d.phi = phi;

    std::vector<VertexId> all(g.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    std::vector<std::vector<VertexId>> work = components_within(g, all);
    std::uint64_t seed = options.seed;
    while (!work.empty()) {
      std::vector<VertexId> piece = std::move(work.back());
      work.pop_back();
      if (piece.size() <= 2) {
        const int label = d.num_clusters++;
        for (VertexId v : piece) d.cluster_of[v] = label;
        d.cluster_phi_certified.push_back(1.0);
        continue;
      }
      const auto sub = graph::induced_subgraph(g, piece);
      const auto emb = weighted_fiedler_embedding(
          sub.graph, options.spectral_iterations, seed);
      if (!options.deterministic) seed += 7919;
      const auto cut = weighted_sweep_cut(sub.graph, emb);
      if (cut.valid && cut.conductance < phi) {
        std::vector<VertexId> left, right;
        for (int i = 0; i < sub.graph.num_vertices(); ++i) {
          (cut.in_s[i] ? left : right).push_back(sub.to_parent[i]);
        }
        for (auto& comp : components_within(g, left)) work.push_back(std::move(comp));
        for (auto& comp : components_within(g, right)) work.push_back(std::move(comp));
      } else {
        const int label = d.num_clusters++;
        for (VertexId v : piece) d.cluster_of[v] = label;
        d.cluster_phi_certified.push_back(cut.valid ? cut.conductance : 1.0);
      }
    }

    d.is_inter_cluster.assign(g.num_edges(), false);
    d.inter_cluster_edges = 0;
    result.inter_cluster_weight = 0;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge ed = g.edge(e);
      if (d.cluster_of[ed.u] != d.cluster_of[ed.v]) {
        d.is_inter_cluster[e] = true;
        ++d.inter_cluster_edges;
        result.inter_cluster_weight += g.weight(e);
      }
    }
    if (result.inter_cluster_weight <= eps * total_weight) return result;
  }
  throw std::runtime_error(
      "expander_decompose_weighted: weight budget unsatisfied after retries");
}

}  // namespace ecd::expander
