// (ε, φ) expander decomposition (Theorems 2.1/2.2 of the paper).
//
// Contract (what downstream code relies on, verified by tests):
//   * every vertex gets a cluster; inter-cluster edges number <= ε|E|;
//   * every cluster G_i = (V_i, E_i) is connected and has conductance
//     >= φ, with φ = ε^{O(1)} / log^{O(1)} n.
//
// Substitution note (see DESIGN.md): the paper uses the distributed
// Chang–Saranurak construction, whose literal implementation has galactic
// constants. We build the decomposition by recursive spectral sweep cuts —
// the same output contract — and charge its *round cost* analytically via
// the theorem's formula (ε^{-O(1)} log^{O(1)} n randomized,
// ε^{-O(1)} 2^{O(sqrt(log n log log n))} deterministic); see
// congest::RoundLedger for how modeled rounds are reported separately from
// measured ones.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::expander {

struct DecompositionOptions {
  // Conductance target; 0 derives φ = ε / (8 * log2 m) from ε.
  double phi = 0.0;
  int spectral_iterations = 300;
  int spectral_restarts = 2;
  // Clusters at most this large get an exact minimum-conductance cut.
  int exact_cut_threshold = 12;
  std::uint64_t seed = 1;
  // Deterministic mode pins the seed and single restart; it also changes the
  // *modeled* round complexity (Theorem 2.2 instead of 2.1).
  bool deterministic = false;
  // If the inter-cluster budget is exceeded, halve φ and retry.
  int max_retries = 4;
};

struct ExpanderDecomposition {
  std::vector<int> cluster_of;           // dense labels in [0, num_clusters)
  int num_clusters = 0;
  std::vector<bool> is_inter_cluster;    // per edge id of the input graph
  int inter_cluster_edges = 0;
  double phi = 0.0;                      // target φ actually used
  // Certified conductance lower bound per cluster (exact for tiny clusters,
  // Cheeger λ2/2 otherwise).
  std::vector<double> cluster_phi_certified;
};

// Decomposes g so that inter-cluster edges <= eps * |E|. Throws
// std::runtime_error if the budget still fails after max_retries.
ExpanderDecomposition expander_decompose(
    const graph::Graph& g, double eps,
    const DecompositionOptions& options = {});

// Members of each cluster (utility shared by framework/tests/benches).
std::vector<std::vector<graph::VertexId>> cluster_members(
    const ExpanderDecomposition& d);

}  // namespace ecd::expander
