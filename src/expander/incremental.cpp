#include "src/expander/incremental.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "src/graph/subgraph.h"

namespace ecd::expander {

using congest::ChurnEvent;
using congest::ChurnKind;
using graph::Edge;
using graph::Graph;
using graph::VertexId;

Graph apply_churn_to_graph(const Graph& g,
                           std::span<const ChurnEvent> events) {
  // An ordered set keeps the mutation loop simple and the resulting edge
  // ids deterministic (sorted by endpoints). Host-side helper — this never
  // runs on the simulated round path.
  std::set<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : g.edges()) edges.insert({e.u, e.v});
  const auto norm = [](VertexId u, VertexId v) {
    return std::make_pair(std::min(u, v), std::max(u, v));
  };
  for (const ChurnEvent& e : events) {
    switch (e.kind) {
      case ChurnKind::kEdgeDelete:
        edges.erase(norm(e.u, e.v));
        break;
      case ChurnKind::kEdgeInsert:
        edges.insert(norm(e.u, e.v));
        break;
      case ChurnKind::kNodeLeave: {
        for (auto it = edges.begin(); it != edges.end();) {
          if (it->first == e.u || it->second == e.u) {
            it = edges.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      case ChurnKind::kNodeJoin:
        break;  // edges are not restored; the plan schedules inserts
    }
  }
  std::vector<Edge> list;
  list.reserve(edges.size());
  for (const auto& [u, v] : edges) list.push_back({u, v});
  return Graph::from_edges(g.num_vertices(), std::move(list));
}

namespace {

// Recomputes the inter-cluster edge set of `d` against `g` (labels are
// taken as-is). The splice below changes labels without touching edges, so
// this is the one place the edge-level contract fields are derived.
void recount_inter_cluster(ExpanderDecomposition& d, const Graph& g) {
  d.is_inter_cluster.assign(g.num_edges(), false);
  d.inter_cluster_edges = 0;
  const auto es = g.edges();
  for (int e = 0; e < g.num_edges(); ++e) {
    if (d.cluster_of[es[e].u] != d.cluster_of[es[e].v]) {
      d.is_inter_cluster[e] = true;
      ++d.inter_cluster_edges;
    }
  }
}

}  // namespace

IncrementalRefreshResult refresh_decomposition(
    const ExpanderDecomposition& old_d, const Graph& new_graph,
    std::span<const ChurnEvent> events, double eps,
    const IncrementalRefreshOptions& options) {
  const int n = new_graph.num_vertices();
  if (static_cast<int>(old_d.cluster_of.size()) != n) {
    throw std::invalid_argument(
        "refresh_decomposition: old decomposition labels a different vertex "
        "count than new_graph");
  }
  IncrementalRefreshResult result;

  // 1. Dirty clusters: the old cluster of every event endpoint.
  std::vector<char> dirty_cluster(std::max(1, old_d.num_clusters), 0);
  const auto mark = [&](VertexId v) {
    dirty_cluster[old_d.cluster_of[v]] = 1;
  };
  for (const ChurnEvent& e : events) {
    mark(e.u);
    if (e.kind == ChurnKind::kEdgeInsert || e.kind == ChurnKind::kEdgeDelete) {
      mark(e.v);
    }
  }
  for (int c = 0; c < old_d.num_clusters; ++c) {
    if (dirty_cluster[c]) ++result.dirty_clusters;
  }
  if (result.dirty_clusters == 0) {
    // Nothing touched: the old labels stand, only the edge-level fields
    // need re-deriving against the new graph (a no-event call is a cheap
    // way to re-anchor a decomposition on a rebuilt Graph object).
    result.decomposition = old_d;
    recount_inter_cluster(result.decomposition, new_graph);
    return result;
  }

  // 2. Dirty vertices: the members of the dirty clusters, in id order.
  std::vector<VertexId> dirty;
  for (VertexId v = 0; v < n; ++v) {
    if (dirty_cluster[old_d.cluster_of[v]]) dirty.push_back(v);
  }
  result.dirty_vertices = static_cast<int>(dirty.size());

  // 3. Fallback: once most of the graph is dirty, a full re-decomposition
  // costs about the same and restores the ε contract exactly.
  if (static_cast<double>(dirty.size()) >
      options.full_rebuild_fraction * static_cast<double>(n)) {
    DistributedDecompositionResult full =
        distributed_expander_decompose(new_graph, eps, options.decomposition);
    result.decomposition = std::move(full.decomposition);
    result.rounds = full.measured_rounds;
    result.fell_back_to_full = true;
    return result;
  }

  // 4. Re-decompose the dirty region of the *new* graph only.
  const graph::InducedSubgraph sub = graph::induced_subgraph(new_graph, dirty);
  ExpanderDecomposition piece;
  double piece_phi = old_d.phi;
  if (sub.graph.num_edges() == 0) {
    // Edgeless dirty region: every vertex is its own (vacuously expanding)
    // cluster; no CONGEST rounds are spent.
    piece.num_clusters = sub.graph.num_vertices();
    piece.cluster_of.resize(sub.graph.num_vertices());
    for (int i = 0; i < sub.graph.num_vertices(); ++i) piece.cluster_of[i] = i;
    piece.cluster_phi_certified.assign(sub.graph.num_vertices(), 1.0);
  } else {
    DistributedDecompositionResult rerun =
        distributed_expander_decompose(sub.graph, eps, options.decomposition);
    piece = std::move(rerun.decomposition);
    result.rounds = rerun.measured_rounds;
    piece_phi = piece.phi;
  }

  // 5. Splice: clean clusters keep their membership under dense relabeling
  // (id order), the piece's clusters follow at an offset.
  std::vector<int> clean_id(std::max(1, old_d.num_clusters), -1);
  int next = 0;
  for (int c = 0; c < old_d.num_clusters; ++c) {
    if (!dirty_cluster[c]) clean_id[c] = next++;
  }
  ExpanderDecomposition merged;
  merged.num_clusters = next + piece.num_clusters;
  merged.cluster_of.assign(n, -1);
  for (VertexId v = 0; v < n; ++v) {
    const int c = old_d.cluster_of[v];
    if (!dirty_cluster[c]) merged.cluster_of[v] = clean_id[c];
  }
  for (int i = 0; i < static_cast<int>(dirty.size()); ++i) {
    merged.cluster_of[sub.to_parent[i]] = next + piece.cluster_of[i];
  }
  merged.cluster_phi_certified.assign(merged.num_clusters, 0.0);
  for (int c = 0; c < old_d.num_clusters; ++c) {
    if (clean_id[c] >= 0 &&
        c < static_cast<int>(old_d.cluster_phi_certified.size())) {
      merged.cluster_phi_certified[clean_id[c]] =
          old_d.cluster_phi_certified[c];
    }
  }
  for (int c = 0; c < piece.num_clusters; ++c) {
    if (c < static_cast<int>(piece.cluster_phi_certified.size())) {
      merged.cluster_phi_certified[next + c] = piece.cluster_phi_certified[c];
    }
  }
  merged.phi = old_d.phi > 0.0 ? std::min(old_d.phi, piece_phi) : piece_phi;
  recount_inter_cluster(merged, new_graph);
  result.decomposition = std::move(merged);
  return result;
}

}  // namespace ecd::expander
