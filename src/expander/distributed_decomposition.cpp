#include "src/expander/distributed_decomposition.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>

#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/congest/trace.h"
#include "src/expander/conductance.h"

namespace ecd::expander {

using congest::Context;
using congest::Message;
using graph::Graph;
using graph::VertexId;

namespace {

constexpr std::int64_t kFixedPoint = 1LL << 32;  // Q32 encoding of [-1, 1]
constexpr std::int64_t kPackShift = 31;          // (2*cut) << 31 | volume
// Broadcast payloads must be nonnegative (the flood primitive uses -1 as
// its "unset" sentinel); scores are biased before flooding.
constexpr std::int64_t kBias = 1LL << 34;

// Distributed lazy power iteration restricted to intra-piece edges, then a
// final exchange of scores. |x| <= 1 throughout (convex updates), so the
// fixed-point word never overflows.
class PowerIterAlgo final : public congest::VertexAlgorithm {
 public:
  PowerIterAlgo(const std::vector<int>* intra, int iterations,
                std::uint64_t seed)
      : intra_(intra), iterations_(iterations) {
    std::mt19937_64 rng(seed);
    x_ = std::uniform_real_distribution<double>(-1.0, 1.0)(rng);
  }

  void round(Context& ctx) override {
    const std::int64_t r = ctx.round();
    if (r < iterations_) {
      if (r > 0) absorb_and_update(ctx);
      for (int p : *intra_) {
        ctx.send(p, {{static_cast<std::int64_t>(x_ * kFixedPoint)}});
      }
      return;
    }
    if (r == iterations_) {
      absorb_and_update(ctx);
      // The averaging operator acts on functions, whose second
      // eigenfunction is already the D^{-1/2}-scaled Fiedler direction:
      // sweep by x directly (the surviving constant offset cannot change
      // the ordering).
      score_ = x_;
      for (int p : *intra_) {
        ctx.send(p, {{static_cast<std::int64_t>(score_ * kFixedPoint)}});
      }
      return;
    }
    if (done_) return;
    neighbor_score_.assign(intra_->size(), 0.0);
    for (std::size_t i = 0; i < intra_->size(); ++i) {
      const auto& box = ctx.inbox((*intra_)[i]);
      if (!box.empty()) {
        neighbor_score_[i] =
            static_cast<double>(box[0].words[0]) / kFixedPoint;
      }
    }
    done_ = true;
  }

  bool finished() const override { return done_ || intra_->empty(); }

  double score() const { return score_; }
  const std::vector<double>& neighbor_scores() const { return neighbor_score_; }

 private:
  void absorb_and_update(Context& ctx) {
    if (intra_->empty()) return;
    double acc = 0.0;
    int count = 0;
    for (int p : *intra_) {
      for (const Message& m : ctx.inbox(p)) {
        acc += static_cast<double>(m.words[0]) / kFixedPoint;
        ++count;
      }
    }
    if (count > 0) x_ = 0.5 * x_ + 0.5 * acc / count;
  }

  const std::vector<int>* intra_;
  int iterations_;
  double x_ = 0.0;
  double score_ = 0.0;
  std::vector<double> neighbor_score_;
  bool done_ = false;
};

std::vector<std::vector<int>> intra_ports(const Graph& g,
                                          const std::vector<int>& piece_of) {
  std::vector<std::vector<int>> ports(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (int p = 0; p < static_cast<int>(nbrs.size()); ++p) {
      if (piece_of[nbrs[p]] == piece_of[v]) ports[v].push_back(p);
    }
  }
  return ports;
}

// Relabels pieces as connected components (splitting may disconnect).
int relabel_components(const Graph& g, std::vector<int>& piece_of) {
  const int n = g.num_vertices();
  std::vector<int> fresh(n, -1);
  int next = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (fresh[s] != -1) continue;
    const int label = next++;
    std::queue<VertexId> q;
    fresh[s] = label;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId u : g.neighbors(v)) {
        if (fresh[u] == -1 && piece_of[u] == piece_of[v]) {
          fresh[u] = label;
          q.push(u);
        }
      }
    }
  }
  piece_of = std::move(fresh);
  return next;
}

int auto_iterations(int n, double phi, int requested) {
  if (requested > 0) return requested;
  const double t = 2.0 / std::max(phi, 1e-6) * std::log2(std::max(2, n));
  return std::min(2000, std::max(60, static_cast<int>(std::ceil(t))));
}

struct LevelOutcome {
  bool any_split = false;
  std::int64_t rounds = 0;
};

// One level: all pieces in parallel run the cut-search protocol; pieces
// with a sweep cut below `phi` adopt it.
LevelOutcome run_level(const Graph& g, std::vector<int>& piece_of,
                       int num_pieces, double phi,
                       const DistributedDecompositionOptions& options,
                       std::vector<bool>& finalized, int level,
                       std::vector<double>& best_cut_seen) {
  TRACE_SPAN(options.trace, "decomposition_level");
  LevelOutcome outcome;
  const int n = g.num_vertices();
  const auto intra = intra_ports(g, piece_of);
  congest::NetworkOptions net;
  net.trace = options.trace;

  // Phase 1+2: power iteration and score exchange (one Network run).
  const int iterations = auto_iterations(n, phi, options.power_iterations);
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  std::vector<PowerIterAlgo*> power(n);
  for (VertexId v = 0; v < n; ++v) {
    auto a = std::make_unique<PowerIterAlgo>(
        &intra[v], iterations,
        options.seed ^ (0xda942042e4dd58b5ULL * (v + 1)) ^
            (0x9e6c63d0876a9a69ULL * (level + 1)));
    power[v] = a.get();
    algos.push_back(std::move(a));
  }
  {
    congest::Network network(g, net);
    outcome.rounds += network.run(algos).rounds;
  }

  // Phase 3+4: per-piece leader and BFS tree.
  const auto election = congest::elect_cluster_leaders(g, piece_of, net);
  outcome.rounds += election.stats.rounds;
  const auto tree =
      congest::build_cluster_bfs_trees(g, piece_of, election.leader_of, net);
  outcome.rounds += tree.stats.rounds;

  // Phase 5: per-piece score range (the power iteration concentrates
  // scores near their piece mean, so the histogram must be normalized per
  // piece): min and max convergecasts, then two leader broadcasts so every
  // vertex knows its piece's range.
  const int buckets = options.histogram_buckets;
  std::vector<std::int64_t> score_fixed(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    score_fixed[v] = static_cast<std::int64_t>(power[v]->score() * kFixedPoint);
  }
  const auto cc_min = congest::convergecast_fold(
      g, piece_of, election.leader_of, tree.parent, tree.depth, score_fixed,
      congest::Fold::kMin, net);
  outcome.rounds += cc_min.stats.rounds;
  const auto cc_max = congest::convergecast_fold(
      g, piece_of, election.leader_of, tree.parent, tree.depth, score_fixed,
      congest::Fold::kMax, net);
  outcome.rounds += cc_max.stats.rounds;
  std::vector<std::int64_t> leader_min(n, 0), leader_max(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (election.leader_of[v] == v) {
      leader_min[v] = cc_min.sum[piece_of[v]] + kBias;
      leader_max[v] = cc_max.sum[piece_of[v]] + kBias;
    }
  }
  const auto bc_min = congest::broadcast_from_leaders(
      g, piece_of, election.leader_of, leader_min, net);
  outcome.rounds += bc_min.stats.rounds;
  const auto bc_max = congest::broadcast_from_leaders(
      g, piece_of, election.leader_of, leader_max, net);
  outcome.rounds += bc_max.stats.rounds;
  // Per-vertex bucket function over its piece's range.
  auto bucket_of = [&](VertexId v, double score) {
    const double lo = static_cast<double>(bc_min.value[v] - kBias) / kFixedPoint;
    const double hi = static_cast<double>(bc_max.value[v] - kBias) / kFixedPoint;
    if (hi - lo < 1e-12) return buckets - 1;  // degenerate: everything in S
    const double t = std::clamp((score - lo) / (hi - lo), 0.0, 1.0);
    return std::min(buckets - 1, static_cast<int>(t * buckets));
  };

  // Phase 6: one convergecast per bucket, summing packed
  // (#opposite-side-neighbor endpoints << 31 | own volume if in S).
  // S_b = vertices with bucket(score) <= b.
  std::vector<std::vector<std::int64_t>> packed_by_bucket(buckets);
  for (int b = 0; b < buckets; ++b) {
    std::vector<std::int64_t> value(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (intra[v].empty()) continue;
      const bool in_s = bucket_of(v, power[v]->score()) <= b;
      std::int64_t crossing = 0;
      const auto& nscores = power[v]->neighbor_scores();
      for (std::size_t i = 0; i < intra[v].size(); ++i) {
        const bool nbr_in_s = bucket_of(v, nscores[i]) <= b;
        crossing += (in_s != nbr_in_s);
      }
      value[v] = (crossing << kPackShift) |
                 (in_s ? static_cast<std::int64_t>(intra[v].size()) : 0);
    }
    const auto cc = congest::convergecast_sum(
        g, piece_of, election.leader_of, tree.parent, tree.depth, value,
        net);
    outcome.rounds += cc.stats.rounds;
    packed_by_bucket[b] = cc.sum;
  }

  // Leaders decide; the winning bucket index (or -1) is broadcast.
  std::vector<std::int64_t> verdict(n, 0);
  std::vector<double> piece_best(num_pieces, 2.0);
  std::vector<int> piece_choice(num_pieces, -1);
  std::vector<std::int64_t> piece_vol(num_pieces, 0);
  for (VertexId v = 0; v < n; ++v) {
    piece_vol[piece_of[v]] += static_cast<std::int64_t>(intra[v].size());
  }
  for (int p = 0; p < num_pieces; ++p) {
    if (finalized[p] || piece_vol[p] == 0) continue;
    for (int b = 0; b < buckets; ++b) {
      const std::int64_t packed = packed_by_bucket[b][p];
      const std::int64_t crossing = packed >> kPackShift;  // = 2*cut
      const std::int64_t vol_s = packed & ((1LL << kPackShift) - 1);
      const std::int64_t vol_rest = piece_vol[p] - vol_s;
      if (vol_s == 0 || vol_rest == 0 || crossing == 0) continue;
      const double conductance =
          (crossing / 2.0) / static_cast<double>(std::min(vol_s, vol_rest));
      if (conductance < piece_best[p]) {
        piece_best[p] = conductance;
        piece_choice[p] = b;
      }
    }
    best_cut_seen[p] = piece_best[p];
    if (piece_best[p] < phi) {
      outcome.any_split = true;
    } else {
      piece_choice[p] = -1;  // piece certified: no cut below phi was found
      finalized[p] = true;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (election.leader_of[v] == v) {
      // Encode bucket+1 so 0 means "no split".
      verdict[v] = piece_choice[piece_of[v]] + 1;
    }
  }
  const auto bc = congest::broadcast_from_leaders(
      g, piece_of, election.leader_of, verdict, net);
  outcome.rounds += bc.stats.rounds;

  // Apply splits: vertices move to the high side by flipping a local bit;
  // the host relabels components afterwards (bookkeeping only).
  for (VertexId v = 0; v < n; ++v) {
    const std::int64_t decision = bc.value[v];
    if (decision > 0 && bucket_of(v, power[v]->score()) > decision - 1) {
      piece_of[v] = num_pieces + piece_of[v];  // provisional high-side label
    }
  }
  return outcome;
}

}  // namespace

DistributedDecompositionResult distributed_expander_decompose(
    const Graph& g, double eps,
    const DistributedDecompositionOptions& options) {
  if (eps <= 0.0 || eps >= 1.0) throw std::invalid_argument("eps out of (0,1)");
  const int n = g.num_vertices();
  const int m = g.num_edges();
  double phi = options.phi;
  if (phi <= 0.0) {
    const double logm = std::max(1.0, std::log2(static_cast<double>(std::max(2, m))));
    phi = eps / (8.0 * logm);
  }

  DistributedDecompositionResult result;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt, phi /= 2.0) {
    std::vector<int> piece_of(n, 0);
    int num_pieces = relabel_components(g, piece_of);
    std::vector<bool> finalized(num_pieces, false);
    std::vector<double> best_cut(num_pieces, 2.0);
    std::int64_t rounds = 0;
    int level = 0;
    for (; level < options.max_levels; ++level) {
      const auto outcome = run_level(g, piece_of, num_pieces, phi, options,
                                     finalized, level, best_cut);
      rounds += outcome.rounds;
      if (!outcome.any_split) break;
      num_pieces = relabel_components(g, piece_of);
      finalized.assign(num_pieces, false);
      best_cut.assign(num_pieces, 2.0);
    }

    ExpanderDecomposition d;
    d.cluster_of = piece_of;
    d.num_clusters = num_pieces;
    d.phi = phi;
    d.is_inter_cluster.assign(m, false);
    d.inter_cluster_edges = 0;
    for (graph::EdgeId e = 0; e < m; ++e) {
      const graph::Edge ed = g.edge(e);
      if (piece_of[ed.u] != piece_of[ed.v]) {
        d.is_inter_cluster[e] = true;
        ++d.inter_cluster_edges;
      }
    }
    d.cluster_phi_certified.assign(num_pieces, phi);
    if (d.inter_cluster_edges <= eps * m) {
      result.decomposition = std::move(d);
      result.measured_rounds = rounds;
      result.levels = level;
      return result;
    }
  }
  throw std::runtime_error(
      "distributed_expander_decompose: budget unsatisfied after retries");
}

}  // namespace ecd::expander
