// Lazy random walks and mixing time (§2 of the paper).
//
// The paper's routing primitive (Lemma 2.4) rides lazy random walks until
// they hit the cluster leader; these helpers compute walk distributions and
// the paper's mixing time τ_mix(G) = min { t : |p_t^v(u) − π(u)| <= π(u)/n }.
#pragma once

#include <optional>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::expander {

// π(u) = deg(u) / vol(V).
std::vector<double> stationary_distribution(const graph::Graph& g);

// Exact distribution of a lazy walk (stay probability 1/2) after `steps`.
std::vector<double> lazy_walk_distribution(const graph::Graph& g,
                                           graph::VertexId source, int steps);

// Smallest t <= max_steps with the paper's pointwise guarantee from
// `source`; nullopt if not mixed by then. (Formerly the sentinel
// max_steps + 1, which a caller could silently consume as a real — and
// wildly wrong — mixing time.)
std::optional<int> mixing_time_from(const graph::Graph& g,
                                    graph::VertexId source, int max_steps);

// Max of mixing_time_from over a sample of sources (includes a
// minimum-degree vertex, typically the slowest to mix); nullopt if any
// sampled source fails to mix within max_steps.
std::optional<int> mixing_time_estimate(const graph::Graph& g, int max_steps,
                                        int extra_sources = 2);

}  // namespace ecd::expander
