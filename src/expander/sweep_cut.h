// Sweep cuts: turn a vertex embedding (e.g. an approximate Fiedler vector)
// into the best prefix cut by conductance.
#pragma once

#include <vector>

#include "src/graph/graph.h"

namespace ecd::expander {

struct SweepResult {
  std::vector<bool> in_s;
  double conductance = 0.0;
  bool valid = false;  // false when no nontrivial cut exists
};

// Sorts vertices by `score` ascending and returns the prefix cut minimizing
// conductance. O(m + n log n).
SweepResult sweep_cut(const graph::Graph& g, const std::vector<double>& score);

// Approximate Fiedler embedding: D^{-1/2} times the deflated power-iteration
// vector (the same operator as lambda2_normalized).
std::vector<double> fiedler_embedding(const graph::Graph& g,
                                      int iterations = 400,
                                      std::uint64_t seed = 1);

// Convenience: fiedler_embedding + sweep_cut, best over `restarts` seeds.
SweepResult spectral_cut(const graph::Graph& g, int iterations = 400,
                         std::uint64_t seed = 1, int restarts = 2);

}  // namespace ecd::expander
