#include "src/expander/decomposition.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "src/expander/conductance.h"
#include "src/expander/sweep_cut.h"
#include "src/graph/splitmix.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"

namespace ecd::expander {

using graph::Graph;
using graph::VertexId;

namespace {

// Exact minimum-conductance cut by enumeration (n <= 16).
SweepResult exact_min_cut(const Graph& g) {
  const int n = g.num_vertices();
  SweepResult best;
  if (n < 2 || g.num_edges() == 0) return best;
  std::vector<bool> in_s(n);
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    for (int v = 1; v < n; ++v) in_s[v] = (mask >> (v - 1)) & 1u;
    in_s[0] = false;
    const double phi = cut_conductance(g, in_s);
    if (phi > 0.0 && (!best.valid || phi < best.conductance)) {
      best.in_s = in_s;
      best.conductance = phi;
      best.valid = true;
    }
  }
  return best;
}

// Splits `vertices` (a subset of g) into connected components of G[vertices].
std::vector<std::vector<VertexId>> split_components(
    const Graph& g, const std::vector<VertexId>& vertices) {
  std::vector<char> in_set(g.num_vertices(), 0);
  for (VertexId v : vertices) in_set[v] = 1;
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<std::vector<VertexId>> components;
  for (VertexId s : vertices) {
    if (seen[s]) continue;
    components.emplace_back();
    auto& comp = components.back();
    std::queue<VertexId> q;
    seen[s] = 1;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      comp.push_back(v);
      for (VertexId u : g.neighbors(v)) {
        if (in_set[u] && !seen[u]) {
          seen[u] = 1;
          q.push(u);
        }
      }
    }
  }
  return components;
}

struct Attempt {
  std::vector<int> cluster_of;
  int num_clusters = 0;
  std::vector<double> cluster_phi;
};

Attempt decompose_with_phi(const Graph& g, double phi,
                           const DecompositionOptions& options) {
  const int n = g.num_vertices();
  Attempt attempt;
  attempt.cluster_of.assign(n, -1);

  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  std::vector<std::vector<VertexId>> work = split_components(g, all);
  std::uint64_t cut_seed = options.seed;

  while (!work.empty()) {
    std::vector<VertexId> piece = std::move(work.back());
    work.pop_back();
    auto finalize = [&](const std::vector<VertexId>& members, double phi_cert) {
      const int label = attempt.num_clusters++;
      for (VertexId v : members) attempt.cluster_of[v] = label;
      attempt.cluster_phi.push_back(phi_cert);
    };
    if (piece.size() <= 2) {
      finalize(piece, 1.0);
      continue;
    }
    const auto sub = graph::induced_subgraph(g, piece);
    SweepResult cut;
    if (sub.graph.num_vertices() <=
        std::min(options.exact_cut_threshold, 16)) {
      cut = exact_min_cut(sub.graph);
    } else {
      cut = spectral_cut(sub.graph, options.spectral_iterations, cut_seed,
                         options.deterministic ? 1 : options.spectral_restarts);
      // Chain per-piece sub-seeds through splitmix64 (the canonical
      // splitmix stream) instead of += 104729, which reused streams across
      // nearby user seeds and pieces.
      if (!options.deterministic) cut_seed = graph::splitmix64(cut_seed);
    }
    if (cut.valid && cut.conductance < phi) {
      std::vector<VertexId> left, right;
      for (int i = 0; i < sub.graph.num_vertices(); ++i) {
        (cut.in_s[i] ? left : right).push_back(sub.to_parent[i]);
      }
      for (auto& comp : split_components(g, left)) work.push_back(std::move(comp));
      for (auto& comp : split_components(g, right)) work.push_back(std::move(comp));
    } else {
      finalize(piece, certified_conductance_lower_bound(
                          sub.graph, options.exact_cut_threshold,
                          options.spectral_iterations, options.seed));
    }
  }
  return attempt;
}

}  // namespace

ExpanderDecomposition expander_decompose(const Graph& g, double eps,
                                         const DecompositionOptions& options) {
  if (eps <= 0.0 || eps >= 1.0) throw std::invalid_argument("eps out of (0,1)");
  const int m = g.num_edges();
  double phi = options.phi;
  if (phi <= 0.0) {
    const double logm = std::max(1.0, std::log2(static_cast<double>(std::max(2, m))));
    phi = eps / (8.0 * logm);
  }

  for (int attempt_idx = 0; attempt_idx <= options.max_retries; ++attempt_idx) {
    Attempt attempt = decompose_with_phi(g, phi, options);
    ExpanderDecomposition result;
    result.cluster_of = std::move(attempt.cluster_of);
    result.num_clusters = attempt.num_clusters;
    result.cluster_phi_certified = std::move(attempt.cluster_phi);
    result.phi = phi;
    result.is_inter_cluster.assign(m, false);
    result.inter_cluster_edges = 0;
    for (graph::EdgeId e = 0; e < m; ++e) {
      const graph::Edge ed = g.edge(e);
      if (result.cluster_of[ed.u] != result.cluster_of[ed.v]) {
        result.is_inter_cluster[e] = true;
        ++result.inter_cluster_edges;
      }
    }
    if (result.inter_cluster_edges <= eps * m) return result;
    phi /= 2.0;  // too many cut edges: aim for stronger clusters next round
  }
  throw std::runtime_error(
      "expander_decompose: inter-cluster budget unsatisfied after retries");
}

std::vector<std::vector<VertexId>> cluster_members(
    const ExpanderDecomposition& d) {
  std::vector<std::vector<VertexId>> members(d.num_clusters);
  for (VertexId v = 0; v < static_cast<VertexId>(d.cluster_of.size()); ++v) {
    members[d.cluster_of[v]].push_back(v);
  }
  return members;
}

}  // namespace ecd::expander
