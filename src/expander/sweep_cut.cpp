#include "src/expander/sweep_cut.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "src/graph/splitmix.h"

namespace ecd::expander {

using graph::Graph;
using graph::VertexId;

SweepResult sweep_cut(const Graph& g, const std::vector<double>& score) {
  const int n = g.num_vertices();
  SweepResult result;
  if (n < 2 || g.num_edges() == 0) return result;

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&score](VertexId a, VertexId b) { return score[a] < score[b]; });

  std::vector<bool> inside(n, false);
  std::int64_t vol_s = 0;
  const std::int64_t vol_total = g.volume();
  std::int64_t cut = 0;
  double best = 1e18;
  int best_k = -1;
  for (int k = 0; k + 1 < n; ++k) {
    const VertexId v = order[k];
    int inside_nbrs = 0;
    for (VertexId u : g.neighbors(v)) {
      if (inside[u]) ++inside_nbrs;
    }
    cut += g.degree(v) - 2 * inside_nbrs;
    inside[v] = true;
    vol_s += g.degree(v);
    const std::int64_t small_vol = std::min(vol_s, vol_total - vol_s);
    if (small_vol == 0) continue;
    const double phi = static_cast<double>(cut) / static_cast<double>(small_vol);
    if (phi < best) {
      best = phi;
      best_k = k + 1;
    }
  }
  if (best_k < 0) return result;
  result.in_s.assign(n, false);
  for (int i = 0; i < best_k; ++i) result.in_s[order[i]] = true;
  result.conductance = best;
  result.valid = true;
  return result;
}

std::vector<double> fiedler_embedding(const Graph& g, int iterations,
                                      std::uint64_t seed) {
  const int n = g.num_vertices();
  std::vector<double> sqrt_deg(n);
  double phi1_norm_sq = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    sqrt_deg[v] = std::sqrt(static_cast<double>(g.degree(v)));
    phi1_norm_sq += g.degree(v);
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> x(n), y(n);
  for (auto& xi : x) xi = unit(rng);

  auto deflate = [&](std::vector<double>& v) {
    if (phi1_norm_sq <= 0) return;
    double dot = 0.0;
    for (int i = 0; i < n; ++i) dot += v[i] * sqrt_deg[i];
    dot /= phi1_norm_sq;
    for (int i = 0; i < n; ++i) v[i] -= dot * sqrt_deg[i];
  };
  auto normalize = [&](std::vector<double>& v) {
    double norm = 0.0;
    for (double vi : v) norm += vi * vi;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return false;
    for (double& vi : v) vi /= norm;
    return true;
  };
  deflate(x);
  normalize(x);
  for (int it = 0; it < iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (VertexId u : g.neighbors(v)) {
        if (sqrt_deg[u] > 0) acc += x[u] / sqrt_deg[u];
      }
      y[v] = 0.5 * (x[v] + (sqrt_deg[v] > 0 ? acc / sqrt_deg[v] : 0.0));
    }
    deflate(y);
    if (!normalize(y)) break;
    x.swap(y);
  }
  // Embed back: Fiedler coordinate of v is x[v] / sqrt(deg v).
  std::vector<double> out(n, 0.0);
  for (int v = 0; v < n; ++v) {
    out[v] = sqrt_deg[v] > 0 ? x[v] / sqrt_deg[v] : 0.0;
  }
  return out;
}

SweepResult spectral_cut(const Graph& g, int iterations, std::uint64_t seed,
                         int restarts) {
  SweepResult best;
  for (int r = 0; r < restarts; ++r) {
    // Per-restart sub-seeds are splitmix-derived, not small additive
    // offsets: seed + 7919·r made nearby user seeds share restart streams
    // (seed 1 restart 1 == seed 7920 restart 0) and fed mt19937_64 with
    // correlated state.
    const auto emb = fiedler_embedding(
        g, iterations,
        graph::splitmix64(seed + 0x9e3779b97f4a7c15ULL *
                                     static_cast<std::uint64_t>(r)));
    const auto cut = sweep_cut(g, emb);
    if (cut.valid && (!best.valid || cut.conductance < best.conductance)) {
      best = cut;
    }
  }
  return best;
}

}  // namespace ecd::expander
