// Conductance computation: exact enumeration for tiny graphs, spectral
// (Cheeger) bounds for everything else (§2 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::expander {

// Φ(S) = |∂S| / min(vol(S), vol(V\S)); 0 for trivial cuts.
double cut_conductance(const graph::Graph& g, const std::vector<bool>& in_s);

// Exact Φ(G) = min over all nontrivial cuts; requires n <= 16. Returns 0 for
// graphs with < 2 vertices and for disconnected graphs.
double exact_conductance(const graph::Graph& g);

// Second-smallest eigenvalue of the normalized Laplacian, estimated by
// deflated power iteration on the normalized adjacency. Accurate to roughly
// the iteration count; deterministic given the seed.
double lambda2_normalized(const graph::Graph& g, int iterations = 400,
                          std::uint64_t seed = 1);

// Cheeger: λ2/2 <= Φ(G) <= sqrt(2 λ2).
struct CheegerBounds {
  double lower = 0.0;
  double upper = 0.0;
};
CheegerBounds conductance_bounds(const graph::Graph& g, int iterations = 400,
                                 std::uint64_t seed = 1);

// Conductance lower bound certificate for one cluster: exact value when the
// cluster is tiny, λ2/2 otherwise.
double certified_conductance_lower_bound(const graph::Graph& g,
                                         int exact_threshold = 14,
                                         int iterations = 400,
                                         std::uint64_t seed = 1);

}  // namespace ecd::expander
