#include "src/expander/conductance.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "src/graph/metrics.h"

namespace ecd::expander {

using graph::Graph;
using graph::VertexId;

double cut_conductance(const Graph& g, const std::vector<bool>& in_s) {
  std::int64_t vol_s = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_s[v]) vol_s += g.degree(v);
  }
  const std::int64_t vol_rest = g.volume() - vol_s;
  if (vol_s == 0 || vol_rest == 0) return 0.0;
  int cut = 0;
  for (const graph::Edge& e : g.edges()) {
    if (in_s[e.u] != in_s[e.v]) ++cut;
  }
  return static_cast<double>(cut) /
         static_cast<double>(std::min(vol_s, vol_rest));
}

double exact_conductance(const Graph& g) {
  const int n = g.num_vertices();
  if (n > 16) throw std::invalid_argument("exact conductance limited to n <= 16");
  if (n < 2 || g.num_edges() == 0) return 0.0;
  if (!graph::is_connected(g)) return 0.0;
  double best = 1e18;
  std::vector<bool> in_s(n);
  // Fix vertex 0 out of S: every cut appears once.
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    for (int v = 1; v < n; ++v) in_s[v] = (mask >> (v - 1)) & 1u;
    in_s[0] = false;
    best = std::min(best, cut_conductance(g, in_s));
  }
  return best == 1e18 ? 0.0 : best;
}

double lambda2_normalized(const Graph& g, int iterations, std::uint64_t seed) {
  const int n = g.num_vertices();
  if (n < 2 || g.num_edges() == 0) return 0.0;
  // Power iteration on N = D^{-1/2} A D^{-1/2} shifted to M = (I + N)/2 so
  // all eigenvalues are nonnegative; deflate the top eigenvector
  // phi_1(v) = sqrt(deg v). lambda2(L) = 2 - 2*mu where mu is the Rayleigh
  // quotient of M on the deflated space.
  std::vector<double> sqrt_deg(n), x(n);
  double phi1_norm_sq = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    sqrt_deg[v] = std::sqrt(static_cast<double>(g.degree(v)));
    phi1_norm_sq += g.degree(v);
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  for (auto& xi : x) xi = unit(rng);

  auto deflate = [&](std::vector<double>& v) {
    double dot = 0.0;
    for (int i = 0; i < n; ++i) dot += v[i] * sqrt_deg[i];
    dot /= phi1_norm_sq;
    for (int i = 0; i < n; ++i) v[i] -= dot * sqrt_deg[i];
  };
  auto normalize = [&](std::vector<double>& v) {
    double norm = 0.0;
    for (double vi : v) norm += vi * vi;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return false;
    for (double& vi : v) vi /= norm;
    return true;
  };

  deflate(x);
  if (!normalize(x)) return 0.0;
  std::vector<double> y(n);
  double mu = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // y = M x = (x + N x) / 2.
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (VertexId u : g.neighbors(v)) {
        if (sqrt_deg[u] > 0) acc += x[u] / sqrt_deg[u];
      }
      y[v] = 0.5 * (x[v] + (sqrt_deg[v] > 0 ? acc / sqrt_deg[v] : 0.0));
    }
    deflate(y);
    mu = 0.0;
    for (int v = 0; v < n; ++v) mu += x[v] * y[v];
    if (!normalize(y)) return 1.0;  // deflated space collapsed: well expanding
    x.swap(y);
  }
  // mu is the Rayleigh quotient of M = (I+N)/2, so lambda2 = 2(1 - mu).
  return std::clamp(2.0 * (1.0 - mu), 0.0, 2.0);
}

CheegerBounds conductance_bounds(const Graph& g, int iterations,
                                 std::uint64_t seed) {
  const double l2 = lambda2_normalized(g, iterations, seed);
  return {l2 / 2.0, std::sqrt(2.0 * l2)};
}

double certified_conductance_lower_bound(const Graph& g, int exact_threshold,
                                         int iterations, std::uint64_t seed) {
  if (g.num_vertices() <= 1) return 1.0;  // no nontrivial cut exists
  if (g.num_vertices() <= std::min(exact_threshold, 16)) {
    return exact_conductance(g);
  }
  // Power iteration overestimates mu (converges from below in Rayleigh
  // quotient terms is not guaranteed); apply a small safety discount.
  return 0.9 * conductance_bounds(g, iterations, seed).lower;
}

}  // namespace ecd::expander
