// Weighted (ε, φ) expander decomposition.
//
// For weighted problems (§1.3 of the paper) the count-based decomposition
// is insufficient: the ε-fraction of removed edges can carry most of the
// weight. This variant uses weighted volumes and cuts — vol_w(S) = total
// weight incident to S, Φ_w(S) = w(∂S)/min(vol_w(S), vol_w(V\S)) — and
// guarantees the inter-cluster *weight* is at most ε·w(E), mirroring the
// weighted low-diameter decompositions of Czygrinow et al. the paper cites.
#pragma once

#include "src/expander/decomposition.h"
#include "src/graph/graph.h"

namespace ecd::expander {

// Weighted analogue of cut_conductance; weights default to 1 on unweighted
// graphs, recovering the unweighted notion exactly.
double weighted_cut_conductance(const graph::Graph& g,
                                const std::vector<bool>& in_s);

// Weighted Fiedler-style embedding (power iteration on the weighted
// normalized adjacency W-walk matrix).
std::vector<double> weighted_fiedler_embedding(const graph::Graph& g,
                                               int iterations = 400,
                                               std::uint64_t seed = 1);

// Decomposition with weighted volumes: inter-cluster weight <= eps * w(E).
// The result's `inter_cluster_edges` still counts edges; the weighted
// budget is returned via `inter_cluster_weight`.
struct WeightedDecomposition {
  ExpanderDecomposition base;
  std::int64_t inter_cluster_weight = 0;
};
WeightedDecomposition expander_decompose_weighted(
    const graph::Graph& g, double eps,
    const DecompositionOptions& options = {});

}  // namespace ecd::expander
