#include "src/expander/random_walk.h"

#include <algorithm>
#include <cmath>

namespace ecd::expander {

using graph::Graph;
using graph::VertexId;

std::vector<double> stationary_distribution(const Graph& g) {
  std::vector<double> pi(g.num_vertices(), 0.0);
  const double vol = static_cast<double>(g.volume());
  if (vol == 0) return pi;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    pi[v] = g.degree(v) / vol;
  }
  return pi;
}

std::vector<double> lazy_walk_distribution(const Graph& g, VertexId source,
                                           int steps) {
  const int n = g.num_vertices();
  std::vector<double> p(n, 0.0), next(n, 0.0);
  p[source] = 1.0;
  for (int t = 0; t < steps; ++t) {
    for (VertexId u = 0; u < n; ++u) next[u] = 0.5 * p[u];
    for (VertexId u = 0; u < n; ++u) {
      if (p[u] == 0.0 || g.degree(u) == 0) continue;
      const double share = 0.5 * p[u] / g.degree(u);
      for (VertexId w : g.neighbors(u)) next[w] += share;
    }
    p.swap(next);
  }
  return p;
}

std::optional<int> mixing_time_from(const Graph& g, VertexId source,
                                    int max_steps) {
  const int n = g.num_vertices();
  const auto pi = stationary_distribution(g);
  std::vector<double> p(n, 0.0), next(n, 0.0);
  p[source] = 1.0;
  auto mixed = [&] {
    for (VertexId u = 0; u < n; ++u) {
      if (std::abs(p[u] - pi[u]) > pi[u] / n + 1e-15) return false;
    }
    return true;
  };
  if (mixed()) return 0;
  for (int t = 1; t <= max_steps; ++t) {
    for (VertexId u = 0; u < n; ++u) next[u] = 0.5 * p[u];
    for (VertexId u = 0; u < n; ++u) {
      if (p[u] == 0.0 || g.degree(u) == 0) continue;
      const double share = 0.5 * p[u] / g.degree(u);
      for (VertexId w : g.neighbors(u)) next[w] += share;
    }
    p.swap(next);
    if (mixed()) return t;
  }
  return std::nullopt;
}

std::optional<int> mixing_time_estimate(const Graph& g, int max_steps,
                                        int extra_sources) {
  const int n = g.num_vertices();
  if (n == 0) return 0;
  VertexId min_deg_vertex = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) < g.degree(min_deg_vertex)) min_deg_vertex = v;
  }
  std::optional<int> worst = mixing_time_from(g, min_deg_vertex, max_steps);
  if (!worst) return std::nullopt;
  for (int i = 0; i < extra_sources; ++i) {
    const VertexId src =
        static_cast<VertexId>((static_cast<std::int64_t>(i + 1) * n) /
                              (extra_sources + 1)) %
        n;
    const std::optional<int> t = mixing_time_from(g, src, max_steps);
    if (!t) return std::nullopt;
    worst = std::max(*worst, *t);
  }
  return worst;
}

}  // namespace ecd::expander
