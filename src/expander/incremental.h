// Self-healing incremental re-decomposition under topology churn
// (DESIGN.md §17).
//
// The decomposition framework's whole point is locality: a churn event —
// an edge appearing or vanishing, a node leaving or rejoining — perturbs
// only the pieces it touches. Chang–Saranurak builds its decomposition
// from restartable per-piece sweep cuts, and the distributed construction
// here (distributed_decomposition.cpp) is a chain of exactly such
// per-piece refinements, so re-running *only the dirty pieces* is the
// natural repair:
//
//   1. dirty clusters = the old clusters of every event endpoint;
//   2. dirty vertices = the members of the dirty clusters;
//   3. run the distributed decomposition on the induced subgraph of the
//      *new* graph over the dirty vertices (its measured CONGEST rounds
//      are the repair cost);
//   4. splice: clean clusters keep their membership (relabeled densely),
//      the sub-run's clusters follow, and the inter-cluster edge set is
//      recomputed against the new graph.
//
// The repair is best-effort on the global ε budget: edges between a clean
// and a dirty cluster are re-counted but clean pieces are never re-cut, so
// the inter-cluster fraction can drift above ε as churn accumulates — that
// drift, versus the (much larger) round cost of a full re-decomposition,
// is precisely what EXPERIMENTS.md E19 measures. When the dirty region
// grows past a configurable fraction of the graph, the repair falls back
// to a full re-decomposition (the drift bound resets).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/congest/fault.h"
#include "src/expander/distributed_decomposition.h"
#include "src/graph/graph.h"

namespace ecd::expander {

struct IncrementalRefreshOptions {
  // Forwarded to the per-piece (or fallback full) distributed runs.
  DistributedDecompositionOptions decomposition;
  // Fall back to a full re-decomposition when the dirty vertices exceed
  // this fraction of the graph: past that point the "incremental" run is
  // most of a full one anyway, and the fallback restores the ε contract.
  double full_rebuild_fraction = 0.5;
};

struct IncrementalRefreshResult {
  // Decomposition over the *new* graph (dense labels, recomputed
  // inter-cluster edge set).
  ExpanderDecomposition decomposition;
  // Measured CONGEST rounds of the repair (the sub-run on the dirty
  // region, or the full run on fallback). 0 when nothing was dirty.
  std::int64_t rounds = 0;
  int dirty_clusters = 0;
  int dirty_vertices = 0;
  bool fell_back_to_full = false;
};

// Mirrors a churn schedule onto a Graph: kEdgeDelete removes the edge,
// kEdgeInsert adds it, kNodeLeave removes every incident edge of the
// (still-present) vertex, kNodeJoin adds nothing (the Network semantics:
// re-established links need explicit inserts). Events apply in list order;
// deletes of absent edges and inserts of present ones are no-ops. The
// vertex set is unchanged. This is the graph the simulator's surviving
// live edges span after the schedule fires.
graph::Graph apply_churn_to_graph(
    const graph::Graph& g, std::span<const congest::ChurnEvent> events);

// Repairs `old_d` (a decomposition of the graph the events were applied
// to) into a decomposition of `new_graph`, re-running only the pieces the
// events touched. `events` are the fired churn events; their endpoints
// select the dirty clusters. Throws std::invalid_argument if old_d does
// not label exactly new_graph.num_vertices() vertices.
IncrementalRefreshResult refresh_decomposition(
    const ExpanderDecomposition& old_d, const graph::Graph& new_graph,
    std::span<const congest::ChurnEvent> events, double eps,
    const IncrementalRefreshOptions& options = {});

}  // namespace ecd::expander
