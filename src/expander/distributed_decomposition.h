// A fully distributed (ε, φ) expander decomposition, measured in CONGEST.
//
// DESIGN.md's substitution table charges the Chang–Saranurak construction
// (Thms 2.1/2.2) by its published formula because a literal implementation
// is infeasible. This module closes half of that gap: it is a *practical*
// distributed decomposition whose every round executes on the simulator
// with O(log n)-bit messages:
//
//   per level, for all active pieces in parallel —
//     1. t rounds of distributed lazy power iteration (one fixed-point
//        word per edge per round) produce an approximate Fiedler score;
//     2. one round exchanges final scores between neighbors;
//     3. leader election + BFS tree (existing primitives);
//     4. min/max score convergecast + broadcast fix a histogram of B
//        candidate thresholds;
//     5. one convergecast per bucket sums (crossing-edge count, volume)
//        packed into a single word; the leader picks the best sweep cut;
//     6. the winning threshold index is broadcast; pieces below target
//        conductance split and recurse.
//
// Rounds are *measured* (returned and ledger-able); the output satisfies
// the same contract as expander_decompose. It makes no claim to the
// theoretical round bound — that remains the modeled entry — but it shows
// the entire pipeline, decomposition included, can run under the model's
// bandwidth constraints.
#pragma once

#include <cstdint>

#include "src/expander/decomposition.h"
#include "src/graph/graph.h"

namespace ecd::congest {
class TraceSink;  // src/congest/trace.h
}

namespace ecd::expander {

struct DistributedDecompositionOptions {
  double phi = 0.0;  // 0: derive eps / (8 log2 m)
  // 0 = auto: ceil((2/phi) * log2 n), capped at 2000 — the sweep needs the
  // walk to run past the target conductance's relaxation time.
  int power_iterations = 0;
  int histogram_buckets = 24;
  int max_levels = 64;
  int max_retries = 4;
  std::uint64_t seed = 1;
  // Observes every simulator round of the construction (null: no tracing).
  congest::TraceSink* trace = nullptr;
};

struct DistributedDecompositionResult {
  ExpanderDecomposition decomposition;
  std::int64_t measured_rounds = 0;  // total CONGEST rounds, all levels
  int levels = 0;
};

DistributedDecompositionResult distributed_expander_decompose(
    const graph::Graph& g, double eps,
    const DistributedDecompositionOptions& options = {});

}  // namespace ecd::expander
